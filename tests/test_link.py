"""Unit tests for link serialization, propagation and queueing."""

import pytest

from repro.simnet.engine import Scheduler
from repro.simnet.link import Link
from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue


class Sink:
    """Stub node that records (time, packet) arrivals."""

    def __init__(self, sched, name="sink"):
        self.sched = sched
        self.name = name
        self.arrivals = []

    def receive(self, pkt, link):
        self.arrivals.append((self.sched.now, pkt))


class Stub:
    def __init__(self, name):
        self.name = name


def make_link(bandwidth=1e6, delay=0.2, qcap=4):
    sched = Scheduler()
    dst = Sink(sched)
    link = Link(sched, Stub("src"), dst, bandwidth, delay, DropTailQueue(qcap))
    return sched, link, dst


def pkt(size=1000):
    return Packet(src="src", dst="sink", size=size)


def test_delivery_time_is_serialization_plus_propagation():
    # 1000 B at 1 Mb/s = 8 ms serialization; +200 ms propagation = 208 ms.
    sched, link, dst = make_link(bandwidth=1e6, delay=0.2)
    link.send(pkt(1000))
    sched.run(until=1.0)
    assert len(dst.arrivals) == 1
    assert dst.arrivals[0][0] == pytest.approx(0.208)


def test_back_to_back_packets_serialize_sequentially():
    sched, link, dst = make_link(bandwidth=1e6, delay=0.0)
    link.send(pkt(1000))
    link.send(pkt(1000))
    sched.run(until=1.0)
    times = [t for t, _ in dst.arrivals]
    assert times[0] == pytest.approx(0.008)
    assert times[1] == pytest.approx(0.016)


def test_queue_overflow_drops():
    sched, link, dst = make_link(bandwidth=1e6, delay=0.0, qcap=2)
    # One transmitting + 2 queued fit; the 4th and 5th are dropped.
    results = [link.send(pkt()) for _ in range(5)]
    assert results == [True, True, True, False, False]
    sched.run(until=1.0)
    assert len(dst.arrivals) == 3
    assert link.queue.stats.dropped == 2


def test_fifo_delivery_order():
    sched, link, dst = make_link(delay=0.0, qcap=10)
    pkts = [pkt() for _ in range(5)]
    for p in pkts:
        link.send(p)
    sched.run(until=1.0)
    assert [p for _, p in dst.arrivals] == pkts


def test_tx_counters():
    sched, link, dst = make_link()
    link.send(pkt(500))
    link.send(pkt(700))
    sched.run(until=1.0)
    assert link.stats.tx_packets == 2
    assert link.stats.tx_bytes == 1200


def test_busy_time_tracks_utilization():
    sched, link, _ = make_link(bandwidth=1e6, delay=0.0, qcap=20)
    for _ in range(10):
        link.send(pkt(1000))  # 10 * 8 ms = 80 ms busy
    sched.run(until=1.0)
    assert link.stats.busy_time == pytest.approx(0.08)
    assert link.stats.utilization(1.0) == pytest.approx(0.08)


def test_utilization_zero_elapsed():
    _, link, _ = make_link()
    assert link.stats.utilization(0.0) == 0.0


def test_down_link_drops_everything():
    sched, link, dst = make_link()
    link.send(pkt())
    link.set_down()
    assert link.send(pkt()) is False
    sched.run(until=1.0)
    # The packet already serializing still completes (bits on the wire),
    # but the one sent while down is gone.
    assert len(dst.arrivals) == 1


def test_set_down_flushes_queue():
    sched, link, dst = make_link(delay=0.0, qcap=10)
    for _ in range(5):
        link.send(pkt())
    link.set_down()
    sched.run(until=1.0)
    assert len(dst.arrivals) == 1  # only the in-flight one


def test_link_recovers_after_set_up():
    sched, link, dst = make_link()
    link.set_down()
    link.set_up()
    assert link.send(pkt()) is True
    sched.run(until=1.0)
    assert len(dst.arrivals) == 1


def test_parameter_validation():
    sched = Scheduler()
    with pytest.raises(ValueError):
        Link(sched, Stub("a"), Sink(sched), bandwidth=0, delay=0.1)
    with pytest.raises(ValueError):
        Link(sched, Stub("a"), Sink(sched), bandwidth=1e6, delay=-1)


def test_slow_link_long_serialization():
    # 56 Kb/s modem: 1000 B takes ~142.9 ms to serialize.
    sched, link, dst = make_link(bandwidth=56_000, delay=0.0)
    link.send(pkt(1000))
    sched.run(until=1.0)
    assert dst.arrivals[0][0] == pytest.approx(8000 / 56_000)


def test_sustained_overload_drop_rate():
    """Offering 2x the link rate for a while drops about half the packets."""
    sched, link, dst = make_link(bandwidth=1e6, delay=0.0, qcap=5)
    # 1 Mb/s link; send 250 packets/s of 1000 B = 2 Mb/s for 2 seconds.
    n = 500
    for i in range(n):
        sched.at(i * 0.004, link.send, pkt())
    sched.run(until=5.0)
    delivered = len(dst.arrivals)
    assert delivered == pytest.approx(n / 2, rel=0.1)
    assert link.queue.stats.dropped == n - delivered
