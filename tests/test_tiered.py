"""Tests for the random tiered-topology generator (paper Fig. 2)."""

import pytest

from repro.experiments.tiered import DEFAULT_TIERS, TierSpec, build_tiered_topology


def _topology_fingerprint(sc):
    """Everything structural about a built scenario: nodes, full link
    attributes (bandwidth, delay, queue capacity), receiver placement and
    session wiring."""
    return {
        "nodes": list(map(str, sc.network.nodes)),
        "links": {
            (str(a), str(b)): (link.bandwidth, link.delay, link.queue.capacity)
            for (a, b), link in sc.network.links.items()
        },
        "receivers": [
            (str(h.receiver_id), str(h.node), h.session_id, h.receiver.level)
            for h in sc.receivers
        ],
        "sessions": {
            sid: (str(d.source), len(d.groups), d.schedule.n_layers)
            for sid, d in sc.sessions.items()
        },
    }


def _tier_link_bandwidths(sc, tiers):
    """Tier name -> bandwidths of the downward links into that tier
    (parent strictly in the tier above; reverse directions and host LANs
    excluded)."""
    prefixes = [t.name for t in tiers]

    def tier_of(name):
        name = str(name)
        if name == "src":
            return "src"
        for p in sorted(prefixes, key=len, reverse=True):
            if name.startswith(p) and name[len(p):].isdigit():
                return p
        return None

    parent_of = {prefixes[0]: "src"}
    for above, below in zip(prefixes, prefixes[1:]):
        parent_of[below] = above

    out = {p: [] for p in prefixes}
    for (a, b), link in sc.network.links.items():
        tier = tier_of(b)
        if tier in out and tier_of(a) == parent_of[tier]:
            out[tier].append(link.bandwidth)
    return out


def test_structure_tiers_present():
    sc = build_tiered_topology(seed=1)
    names = set(map(str, sc.network.nodes))
    assert any(n.startswith("regional") for n in names)
    assert any(n.startswith("local") for n in names)
    assert any(n.startswith("institutional") for n in names)
    assert any(n.startswith("h") for n in names)
    assert sc.receivers


def test_deterministic_for_seed():
    a = build_tiered_topology(seed=5)
    b = build_tiered_topology(seed=5)
    assert set(a.network.nodes) == set(b.network.nodes)
    assert {
        k: l.bandwidth for k, l in a.network.links.items()
    } == {k: l.bandwidth for k, l in b.network.links.items()}


@pytest.mark.parametrize("seed", [0, 3, 11, 42])
def test_full_fingerprint_deterministic(seed):
    """Same seed reproduces the *entire* topology: every link's bandwidth,
    delay and queue capacity, receiver placement with initial levels, and
    session wiring — not just the node set."""
    a = _topology_fingerprint(build_tiered_topology(seed=seed))
    b = _topology_fingerprint(build_tiered_topology(seed=seed))
    assert a == b


@pytest.mark.parametrize("seed", [0, 3, 11, 42])
def test_bandwidth_gradient_every_tier_pair(seed):
    """The paper's capacity gradient holds tier-by-tier: every downward
    link into tier t is strictly faster than every link into tier t+1."""
    sc = build_tiered_topology(seed=seed)
    by_tier = _tier_link_bandwidths(sc, DEFAULT_TIERS)
    for upper, lower in zip(DEFAULT_TIERS, DEFAULT_TIERS[1:]):
        ups = by_tier[upper.name]
        downs = by_tier[lower.name]
        assert ups and downs, (upper.name, lower.name)
        assert min(ups) > max(downs), (upper.name, lower.name, min(ups), max(downs))
        # and each tier draws only from its configured range
        assert all(upper.bandwidth[0] <= bw <= upper.bandwidth[1] for bw in ups)
        assert all(lower.bandwidth[0] <= bw <= lower.bandwidth[1] for bw in downs)


def test_different_seeds_differ():
    a = build_tiered_topology(seed=1)
    b = build_tiered_topology(seed=2)
    assert set(a.network.nodes) != set(b.network.nodes) or {
        k: l.bandwidth for k, l in a.network.links.items()
    } != {k: l.bandwidth for k, l in b.network.links.items()}


def test_bandwidth_gradient_last_mile_is_bottleneck():
    """Institutional access links are slower than regional ones."""
    sc = build_tiered_topology(seed=3)
    regional = [
        l.bandwidth for (a, b), l in sc.network.links.items()
        if str(a) == "src" and str(b).startswith("regional")
    ]
    institutional = [
        l.bandwidth for (a, b), l in sc.network.links.items()
        if str(a).startswith("local") and str(b).startswith("institutional")
    ]
    assert min(regional) > max(institutional)


def test_max_receivers_cap():
    sc = build_tiered_topology(seed=1, max_receivers=3)
    assert len(sc.receivers) <= 3


def test_receiver_fraction_validation():
    with pytest.raises(ValueError):
        build_tiered_topology(receiver_fraction=0.0)


def test_custom_tiers():
    tiers = (
        TierSpec("mid", fanout=(2, 2), bandwidth=(1e6, 1e6)),
        TierSpec("edge", fanout=(2, 2), bandwidth=(100e3, 100e3)),
    )
    sc = build_tiered_topology(seed=1, tiers=tiers)
    edges = [n for n in map(str, sc.network.nodes) if n.startswith("edge")]
    assert len(edges) == 4  # 2 mids x fanout 2


def test_toposense_tracks_oracle_on_random_tiered_topology():
    """End-to-end: on a random hierarchy, receivers move toward the oracle
    levels their last-mile links dictate."""
    sc = build_tiered_topology(seed=7, max_receivers=6, traffic="cbr")
    res = sc.run(240.0)
    optimal = res.optimal_levels()
    assert len(set(optimal.values())) >= 2  # heterogeneous optima
    dev = res.mean_deviation(80.0)
    assert dev < 0.6, dev
    # No receiver is catastrophically off (at base while optimum is high).
    for h in sc.receivers:
        opt = optimal[(h.session_id, h.receiver_id)]
        mean = h.trace.time_weighted_mean(80.0, res.end_time)
        assert mean >= 0.3 * opt, (h.receiver_id, mean, opt)
