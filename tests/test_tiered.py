"""Tests for the random tiered-topology generator (paper Fig. 2)."""

import pytest

from repro.experiments.tiered import TierSpec, build_tiered_topology


def test_structure_tiers_present():
    sc = build_tiered_topology(seed=1)
    names = set(map(str, sc.network.nodes))
    assert any(n.startswith("regional") for n in names)
    assert any(n.startswith("local") for n in names)
    assert any(n.startswith("institutional") for n in names)
    assert any(n.startswith("h") for n in names)
    assert sc.receivers


def test_deterministic_for_seed():
    a = build_tiered_topology(seed=5)
    b = build_tiered_topology(seed=5)
    assert set(a.network.nodes) == set(b.network.nodes)
    assert {
        k: l.bandwidth for k, l in a.network.links.items()
    } == {k: l.bandwidth for k, l in b.network.links.items()}


def test_different_seeds_differ():
    a = build_tiered_topology(seed=1)
    b = build_tiered_topology(seed=2)
    assert set(a.network.nodes) != set(b.network.nodes) or {
        k: l.bandwidth for k, l in a.network.links.items()
    } != {k: l.bandwidth for k, l in b.network.links.items()}


def test_bandwidth_gradient_last_mile_is_bottleneck():
    """Institutional access links are slower than regional ones."""
    sc = build_tiered_topology(seed=3)
    regional = [
        l.bandwidth for (a, b), l in sc.network.links.items()
        if str(a) == "src" and str(b).startswith("regional")
    ]
    institutional = [
        l.bandwidth for (a, b), l in sc.network.links.items()
        if str(a).startswith("local") and str(b).startswith("institutional")
    ]
    assert min(regional) > max(institutional)


def test_max_receivers_cap():
    sc = build_tiered_topology(seed=1, max_receivers=3)
    assert len(sc.receivers) <= 3


def test_receiver_fraction_validation():
    with pytest.raises(ValueError):
        build_tiered_topology(receiver_fraction=0.0)


def test_custom_tiers():
    tiers = (
        TierSpec("mid", fanout=(2, 2), bandwidth=(1e6, 1e6)),
        TierSpec("edge", fanout=(2, 2), bandwidth=(100e3, 100e3)),
    )
    sc = build_tiered_topology(seed=1, tiers=tiers)
    edges = [n for n in map(str, sc.network.nodes) if n.startswith("edge")]
    assert len(edges) == 4  # 2 mids x fanout 2


def test_toposense_tracks_oracle_on_random_tiered_topology():
    """End-to-end: on a random hierarchy, receivers move toward the oracle
    levels their last-mile links dictate."""
    sc = build_tiered_topology(seed=7, max_receivers=6, traffic="cbr")
    res = sc.run(240.0)
    optimal = res.optimal_levels()
    assert len(set(optimal.values())) >= 2  # heterogeneous optima
    dev = res.mean_deviation(80.0)
    assert dev < 0.6, dev
    # No receiver is catastrophically off (at base while optimum is high).
    for h in sc.receivers:
        opt = optimal[(h.session_id, h.receiver_id)]
        mean = h.trace.time_weighted_mean(80.0, res.end_time)
        assert mean >= 0.3 * opt, (h.receiver_id, mean, opt)
