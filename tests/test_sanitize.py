"""The runtime shared-state sanitizer (TSan-lite for federated runs).

Unit tests drive the ownership protocol directly (claim, same-scope
re-write, cross-scope write, adopted-shared write, unscoped merge),
then an integration test injects a deliberate cross-thread write — a
``DomainShard`` subclass that pokes the shared coordinator from inside
``run_to`` — and asserts the sanitizer catches it in both collect and
raise modes.  The same defect's *static* twin lives in
``tests/lint_fixtures/r006_bad_injected_write.py`` (see
``tests/test_callgraph.py``), so the injected race is caught by both
halves of the analyzer.  Finally a small ``run_sanitize`` smoke pins
the sequential-vs-parallel determinism fuzz.
"""

import pytest

from repro.analysis import SanitizerError, SharedStateSanitizer
from repro.analysis.sanitize import run_sanitize
from repro.federation.coordinator import FederationCoordinator
from repro.federation.experiment import build_federated_views
from repro.federation.session import FederatedSession
from repro.federation.shard import DomainShard


class TestOwnershipProtocol:
    def test_unscoped_writes_are_sanctioned_merges(self):
        with SharedStateSanitizer() as san:
            coord = FederationCoordinator()
            coord.merges = 1  # no shard scope active: calling-thread merge
        assert san.violations == []
        assert san.writes_checked == 0

    def test_scoped_write_claims_then_same_scope_ok(self):
        with SharedStateSanitizer() as san:
            coord = FederationCoordinator()
            with san.shard_scope("a"):
                coord.merges = 1
                coord.merges = 2
        assert san.violations == []
        assert san.writes_checked == 2

    def test_cross_scope_write_is_a_violation(self):
        with SharedStateSanitizer(raise_on_violation=False) as san:
            coord = FederationCoordinator()
            with san.shard_scope("a"):
                coord.merges = 1
            with san.shard_scope("b"):
                coord.merges = 2
        (v,) = san.violations
        assert v.kind == "cross-scope"
        assert v.scope == "b" and v.owner == "a"
        assert "owned by shard 'a'" in v.describe()

    def test_adopted_shared_write_is_a_violation(self):
        with SharedStateSanitizer(raise_on_violation=False) as san:
            coord = FederationCoordinator()
            assert san.adopt_shared(coord) >= 1
            with san.shard_scope("a"):
                coord.merges = 1
        (v,) = san.violations
        assert v.kind == "shared"
        assert "wrote shared state" in v.describe()

    def test_raise_mode_raises_on_first_violation(self):
        with SharedStateSanitizer() as san:
            coord = FederationCoordinator()
            san.adopt_shared(coord)
            with pytest.raises(SanitizerError):
                with san.shard_scope("a"):
                    coord.merges = 1

    def test_uninstall_restores_setattr(self):
        san = SharedStateSanitizer(raise_on_violation=False)
        with san:
            pass
        coord = FederationCoordinator()
        san.adopt_shared(coord)
        with san.shard_scope("a"):
            coord.merges = 1  # hook gone: nothing recorded
        assert san.violations == []
        assert type(coord).__dict__.get("__setattr__") is None

    def test_double_install_refused(self):
        with SharedStateSanitizer() as san:
            with pytest.raises(SanitizerError):
                san.install()


class LeakyShard(DomainShard):
    """Test-only defect: pokes the shared coordinator from run_to.

    This is the runtime twin of the static fixture
    ``r006_bad_injected_write.py`` — the same write pattern that R006
    flags when it appears in package code.
    """

    coordinator = None  # class-level ref set by the test

    def run_to(self, t: float) -> None:
        LeakyShard.coordinator.poked = str(self.domain)
        super().run_to(t)


def leaky_session(san):
    views = build_federated_views(
        n_domains=2, receivers_per_domain=4, seed=1
    )
    fed = FederatedSession(views, seed=1, parallel=True, sanitizer=san)
    LeakyShard.coordinator = fed.coordinator
    fed.shards = {
        name: LeakyShard(shard.view, seed=1)
        for name, shard in fed.shards.items()
    }
    return fed


class TestInjectedCrossThreadWrite:
    def test_collect_mode_records_shared_violations(self):
        san = SharedStateSanitizer(raise_on_violation=False)
        with san:
            fed = leaky_session(san)
            fed.run(8.0)
        shared = [v for v in san.violations if v.kind == "shared"]
        assert shared, "the injected coordinator poke must be caught"
        assert all(v.attr == "poked" for v in shared)
        assert all(v.cls == "FederationCoordinator" for v in shared)

    def test_raise_mode_fails_the_run(self):
        san = SharedStateSanitizer(raise_on_violation=True)
        with san:
            fed = leaky_session(san)
            with pytest.raises(SanitizerError, match="shared state"):
                fed.run(8.0)

    def test_clean_session_has_no_violations(self):
        san = SharedStateSanitizer(raise_on_violation=True)
        with san:
            views = build_federated_views(
                n_domains=2, receivers_per_domain=4, seed=1
            )
            fed = FederatedSession(
                views, seed=1, parallel=True, sanitizer=san
            )
            fed.run(8.0)
        assert san.violations == []
        assert san.writes_checked > 0  # scopes were actually active


class TestRunSanitize:
    def test_fuzz_passes_and_matches_sequential(self):
        result = run_sanitize(
            seed=1, duration=12.0, n_domains=2,
            receivers_per_domain=4, fuzz_seeds=2,
        )
        assert result["ok"] is True
        assert len(result["checks"]) == 2
        for check in result["checks"]:
            assert check["identical"] is True
            assert check["violations"] == []
            assert check["writes_checked"] > 0

    def test_fuzz_seeds_validated(self):
        with pytest.raises(ValueError):
            run_sanitize(fuzz_seeds=0)
