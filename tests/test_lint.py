"""The determinism & contract linter: rules R001-R005, engine, CLI.

Each rule is exercised against known-good and known-bad fixture files
under ``tests/lint_fixtures/`` (that directory is excluded from the
linter's own walk precisely so the bad fixtures can exist), suppression
comments are covered, the ``--json`` document schema is pinned, and a
meta-test asserts the repo itself lints clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    FileContext,
    LintError,
    MessageSchemaRule,
    NoFloatEqualityRule,
    NoSetIterationRule,
    NoWallClockRule,
    Project,
    TopicContractRule,
    run_lint,
)
from repro.analysis.contracts import TABLE_BEGIN, TABLE_END
from repro.obs.bus import TopicSpec, render_topic_table

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def fixture_ctx(name: str, rel_path: str) -> FileContext:
    """A fixture file parsed under a synthetic repo-relative path."""
    return FileContext(rel_path, (FIXTURES / name).read_text())


def run_file_rule(rule, name: str, rel_path: str):
    project = Project([fixture_ctx(name, rel_path)])
    return run_lint(rules=[rule], project=project).findings


class TestR001WallClock:
    def test_bad_fixture_fires(self):
        findings = run_file_rule(
            NoWallClockRule(), "r001_bad.py", "src/repro/media/fixture.py"
        )
        assert all(f.code == "R001" for f in findings)
        messages = "\n".join(f.message for f in findings)
        assert "time.time" in messages
        assert "datetime.now" in messages
        assert "time.localtime" in messages
        assert "time.strftime" in messages
        assert "random.random" in messages
        assert "np.random.rand" in messages
        assert "np.random.seed" in messages
        assert "default_rng()" in messages
        assert "shuffle" in messages
        # the two import statements of the random module are themselves flagged
        assert len(findings) >= 10

    def test_good_fixture_clean(self):
        assert run_file_rule(
            NoWallClockRule(), "r001_good.py", "src/repro/media/fixture.py"
        ) == []

    def test_out_of_scope_path_ignored(self):
        assert run_file_rule(
            NoWallClockRule(), "r001_bad.py", "tools/fixture.py"
        ) == []


class TestR002FloatEquality:
    def test_bad_fixture_fires(self):
        findings = run_file_rule(
            NoFloatEqualityRule(), "r002_bad.py", "src/repro/core/fixture.py"
        )
        # five functions; the chained comparison contributes one per operator
        assert len(findings) == 6
        assert {f.code for f in findings} == {"R002"}

    def test_good_fixture_clean(self):
        assert run_file_rule(
            NoFloatEqualityRule(), "r002_good.py", "src/repro/core/fixture.py"
        ) == []

    def test_metrics_scope_included(self):
        assert run_file_rule(
            NoFloatEqualityRule(), "r002_bad.py", "src/repro/metrics/fixture.py"
        )


class TestR003SetIteration:
    def test_bad_fixture_fires(self):
        findings = run_file_rule(
            NoSetIterationRule(), "r003_bad.py", "src/repro/control/fixture.py"
        )
        assert len(findings) == 4
        assert {f.code for f in findings} == {"R003"}

    def test_good_fixture_clean(self):
        assert run_file_rule(
            NoSetIterationRule(), "r003_good.py", "src/repro/control/fixture.py"
        ) == []


def topic_doc(specs) -> str:
    return (
        "## 10. Observability\n\n"
        f"{TABLE_BEGIN}\n{render_topic_table(specs)}\n{TABLE_END}\n"
    )


FIXTURE_SPECS = (
    TopicSpec("link.drop", "simnet/link.py", "`link`, `reason`"),
    TopicSpec("ctrl.tick.start", "control/agent.py", "`epoch`"),
    TopicSpec("guard.strike", "control/guard.py", "`reason`"),
    TopicSpec("fault.*", "run recorder", "dynamic kind suffix"),
    TopicSpec("ghost.topic", "nobody", "never emitted anywhere"),
)


def topic_project(emit_fixture: str, doc: str = None) -> Project:
    contexts = [
        fixture_ctx("r004_bus.py", "src/repro/obs/bus.py"),
        fixture_ctx(emit_fixture, "src/repro/simnet/emitters.py"),
    ]
    docs = {"DESIGN.md": topic_doc(FIXTURE_SPECS) if doc is None else doc}
    return Project(contexts, docs)


class TestR004TopicContract:
    def test_good_project_clean(self):
        findings = run_lint(rules=[TopicContractRule()],
                            project=topic_project("r004_emit_good.py")).findings
        assert findings == []

    def test_unknown_topics_flagged(self):
        findings = run_lint(rules=[TopicContractRule()],
                            project=topic_project("r004_emit_bad.py")).findings
        messages = "\n".join(f.message for f in findings)
        assert "`link.dorp`" in messages
        assert "`mystery.…`" in messages
        assert "`nonsense.sample`" in messages
        emit_findings = [f for f in findings
                        if f.path == "src/repro/simnet/emitters.py"
                        and "emitted topic" in f.message]
        assert len(emit_findings) == 3

    def test_dead_patterns_flagged(self):
        findings = run_lint(rules=[TopicContractRule()],
                            project=topic_project("r004_emit_bad.py")).findings
        dead = [f.message for f in findings if "dead pattern" in f.message]
        assert any("`recv.*`" in m for m in dead)
        assert any("`ctrl.tick.stop`" in m for m in dead)

    def test_dead_registry_entry_flagged(self):
        findings = run_lint(rules=[TopicContractRule()],
                            project=topic_project("r004_emit_bad.py")).findings
        assert any("`ghost.topic` is never emitted" in f.message for f in findings)

    def test_undocumented_topic_flagged(self):
        doc = topic_doc([s for s in FIXTURE_SPECS if s.name != "ghost.topic"])
        findings = run_lint(rules=[TopicContractRule()],
                            project=topic_project("r004_emit_good.py", doc=doc)).findings
        assert any("`ghost.topic` is undocumented" in f.message for f in findings)
        assert any("stale" in f.message for f in findings)

    def test_missing_markers_flagged(self):
        findings = run_lint(
            rules=[TopicContractRule()],
            project=topic_project("r004_emit_good.py", doc="no markers here"),
        ).findings
        assert any("markers missing" in f.message for f in findings)


def schema_project(messages_fixture: str, guard_fixture: str) -> Project:
    return Project([
        fixture_ctx(messages_fixture, "src/repro/control/messages.py"),
        fixture_ctx(guard_fixture, "src/repro/control/guard.py"),
    ])


class TestR005MessageSchema:
    def test_good_project_clean(self):
        findings = run_lint(
            rules=[MessageSchemaRule()],
            project=schema_project("r005_messages_good.py", "r005_guard_good.py"),
        ).findings
        assert findings == []

    def test_defects_flagged(self):
        findings = run_lint(
            rules=[MessageSchemaRule()],
            project=schema_project("r005_messages.py", "r005_guard_bad.py"),
        ).findings
        messages = "\n".join(f.message for f in findings)
        assert "`Report.priority` has no guard rule" in messages
        assert "`Report.qos`" in messages and "no such field" in messages
        assert "never read as `msg.t1`" in messages
        assert "`Rumour`" in messages
        assert "`Register.node` is both guarded and exempt" in messages
        assert {f.code for f in findings} == {"R005"}

    def test_unguarded_field_anchors_to_messages_file(self):
        findings = run_lint(
            rules=[MessageSchemaRule()],
            project=schema_project("r005_messages.py", "r005_guard_good.py"),
        ).findings
        (finding,) = [f for f in findings if "priority" in f.message]
        assert finding.path == "src/repro/control/messages.py"
        assert finding.line > 0


class TestSuppression:
    def test_noqa_is_per_line_and_per_code(self):
        findings = run_file_rule(
            NoWallClockRule(), "suppression.py", "src/repro/obs/fixture.py"
        )
        lines = sorted(f.line for f in findings)
        src = (FIXTURES / "suppression.py").read_text().splitlines()
        flagged = [src[ln - 1] for ln in lines]
        assert len(findings) == 2
        assert any("R999" in text for text in flagged)
        assert any("unsuppressed" not in text and "noqa" not in text
                   for text in flagged)


class TestEngineAndCli:
    def test_repo_lints_clean_meta(self):
        result = run_lint(root=str(REPO_ROOT))
        assert result.findings == []
        assert result.files_scanned > 100
        assert result.rules == (
            "R001", "R002", "R003", "R004", "R005", "R006", "R007", "R008",
        )

    def test_repo_lint_reports_per_rule_timings(self):
        result = run_lint(root=str(REPO_ROOT))
        assert set(result.timings_ms) == set(result.rules)
        assert all(t >= 0.0 for t in result.timings_ms.values())
        # the perf satellite's budget: whole-repo lint, interprocedural
        # rules included, stays well under ~5 s
        assert sum(result.timings_ms.values()) < 5000.0

    def test_fixture_dir_is_excluded_from_walk(self):
        result = run_lint(root=str(REPO_ROOT))
        # would be impossible if the known-bad fixtures were scanned
        assert result.clean

    def test_cli_exit_zero_and_human_output(self, capsys):
        from repro.cli import main

        assert main(["lint", "--root", str(REPO_ROOT)]) == 0
        err = capsys.readouterr().err
        assert "files scanned" in err and "clean" in err

    def test_cli_exit_one_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text("def f(x):\n    return x == 0.5\n")
        from repro.cli import main

        assert main(["lint", "--root", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "R002" in out and "bad.py:2" in out

    def test_cli_exit_two_on_internal_error(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "broken.py").write_text("def broken(:\n")
        from repro.cli import main

        assert main(["lint", "--root", str(tmp_path)]) == 2
        assert "syntax error" in capsys.readouterr().err

    def test_cli_json_schema(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "bad.py").write_text("def f(x):\n    return x == 0.5\n")
        from repro.cli import main

        assert main(["lint", "--root", str(tmp_path), "--json"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 2
        assert doc["clean"] is False
        assert doc["files_scanned"] == 1
        assert doc["counts"] == {"R002": 1}
        assert set(doc["timings_ms"]) == set(doc["rules"])
        (finding,) = doc["findings"]
        assert finding == {
            "path": "src/repro/core/bad.py",
            "line": 2,
            "code": "R002",
            "message": finding["message"],
            "severity": "error",
        }
        assert "float equality" in finding["message"]

    def test_missing_root_is_internal_error(self):
        with pytest.raises(LintError):
            run_lint(root="/nonexistent/path/xyz")

    def test_findings_sorted(self, tmp_path):
        core = tmp_path / "src" / "repro" / "core"
        core.mkdir(parents=True)
        (core / "a.py").write_text("x = 1.0 == 2.0\ny = 3.0 != 4.0\n")
        (core / "b.py").write_text("z = 5.0 == 6.0\n")
        result = run_lint(root=str(tmp_path))
        assert [(f.path, f.line) for f in result.findings] == [
            ("src/repro/core/a.py", 1),
            ("src/repro/core/a.py", 2),
            ("src/repro/core/b.py", 1),
        ]
