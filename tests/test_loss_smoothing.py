"""Tests for the EWMA loss-differentiation extension (paper §V)."""

import numpy as np
import pytest

from repro.core.config import TopoSenseConfig
from repro.core.session_topology import SessionTree
from repro.core.toposense import TopoSense
from repro.core.types import ReceiverReport, SessionInput
from repro.media.layers import PAPER_SCHEDULE


def make_input(level, loss):
    tree = SessionTree(0, "s", [("s", "m"), ("m", "leaf")], {"leaf": "R"})
    return SessionInput(
        tree=tree, schedule=PAPER_SCHEDULE,
        reports={"R": ReceiverReport("R", loss, 100_000.0, level)},
    )


def cfg(**kw):
    return TopoSenseConfig(add_probability=1.0, **kw)


def test_single_burst_interval_filtered():
    """One bursty-loss interval among clean ones must not look congested
    when smoothing is on."""
    ts = TopoSense(config=cfg(loss_ewma=0.3), rng=np.random.default_rng(0))
    t = 0.0
    for _ in range(3):
        t += 2.0
        ts.update(t, [make_input(4, 0.0)])
    t += 2.0
    ts.update(t, [make_input(4, 0.12)])  # one burst: smoothed to 0.036
    diag = ts.last_diagnostics[0]
    assert diag["loss"]["leaf"] == pytest.approx(0.3 * 0.12)
    assert not diag["congestion"]["leaf"]


def test_sustained_congestion_still_detected():
    ts = TopoSense(config=cfg(loss_ewma=0.3), rng=np.random.default_rng(0))
    t = 0.0
    for _ in range(6):
        t += 2.0
        ts.update(t, [make_input(4, 0.12)])
    diag = ts.last_diagnostics[0]
    # EWMA converges to the sustained 0.12, well above p_threshold.
    assert diag["loss"]["leaf"] > 0.09
    assert diag["congestion"]["leaf"]


def test_smoothing_off_by_default():
    ts = TopoSense(config=cfg(), rng=np.random.default_rng(0))
    ts.update(2.0, [make_input(4, 0.12)])
    assert ts.last_diagnostics[0]["loss"]["leaf"] == pytest.approx(0.12)
    assert ts.last_diagnostics[0]["congestion"]["leaf"]


def test_invalid_ewma_rejected():
    with pytest.raises(ValueError):
        TopoSenseConfig(loss_ewma=1.5)
    with pytest.raises(ValueError):
        TopoSenseConfig(loss_ewma=-0.1)


def test_first_sample_not_diluted():
    """With no history the first sample is taken at face value (no phantom
    zero-history average)."""
    ts = TopoSense(config=cfg(loss_ewma=0.3), rng=np.random.default_rng(0))
    ts.update(2.0, [make_input(4, 0.5)])
    assert ts.last_diagnostics[0]["loss"]["leaf"] == pytest.approx(0.5)
