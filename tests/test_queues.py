"""Unit tests for drop-tail and RED queues."""

import numpy as np
import pytest

from repro.simnet.packet import Packet
from repro.simnet.queues import DropTailQueue, REDQueue


def pkt(size=1000):
    return Packet(src="s", dst="d", size=size)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(capacity=10)
        p1, p2, p3 = pkt(), pkt(), pkt()
        assert q.push(p1) and q.push(p2) and q.push(p3)
        assert q.pop() is p1
        assert q.pop() is p2
        assert q.pop() is p3

    def test_pop_empty_returns_none(self):
        assert DropTailQueue().pop() is None

    def test_tail_drop_beyond_capacity(self):
        q = DropTailQueue(capacity=2)
        assert q.push(pkt())
        assert q.push(pkt())
        assert not q.push(pkt())
        assert q.stats.dropped == 1
        assert q.stats.enqueued == 2

    def test_capacity_one(self):
        q = DropTailQueue(capacity=1)
        assert q.push(pkt())
        assert not q.push(pkt())
        q.pop()
        assert q.push(pkt())

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DropTailQueue(capacity=0)

    def test_byte_counters(self):
        q = DropTailQueue(capacity=1)
        q.push(pkt(size=500))
        q.push(pkt(size=700))  # dropped
        assert q.stats.bytes_enqueued == 500
        assert q.stats.bytes_dropped == 700

    def test_drop_rate(self):
        q = DropTailQueue(capacity=1)
        q.push(pkt())
        q.push(pkt())
        assert q.stats.offered == 2
        assert q.stats.drop_rate == pytest.approx(0.5)

    def test_drop_rate_zero_when_empty(self):
        assert DropTailQueue().stats.drop_rate == 0.0

    def test_len_and_bool(self):
        q = DropTailQueue()
        assert not q and len(q) == 0
        q.push(pkt())
        assert q and len(q) == 1

    def test_dequeued_counter(self):
        q = DropTailQueue()
        q.push(pkt())
        q.pop()
        q.pop()
        assert q.stats.dequeued == 1


class TestRED:
    def test_accepts_below_min_threshold(self):
        q = REDQueue(capacity=50, min_th=5, max_th=15, rng=np.random.default_rng(0))
        for _ in range(4):
            assert q.push(pkt())
        assert q.stats.dropped == 0

    def test_always_drops_when_full(self):
        q = REDQueue(capacity=3, min_th=1, max_th=2, rng=np.random.default_rng(0))
        for _ in range(10):
            q.push(pkt())
        assert len(q) <= 3
        assert q.stats.dropped >= 7

    def test_probabilistic_drops_in_ramp(self):
        rng = np.random.default_rng(42)
        q = REDQueue(capacity=200, min_th=2, max_th=10, max_p=0.5, wq=0.5, rng=rng)
        accepted = sum(q.push(pkt()) for _ in range(150))
        assert 0 < q.stats.dropped < 150
        assert accepted + q.stats.dropped == 150

    def test_parameter_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            REDQueue(min_th=10, max_th=5, rng=rng)
        with pytest.raises(ValueError):
            REDQueue(max_p=0.0, rng=rng)
        with pytest.raises(ValueError):
            REDQueue(max_p=1.5, rng=rng)

    def test_drop_probability_regions(self):
        q = REDQueue(capacity=100, min_th=5, max_th=15, max_p=0.1, rng=np.random.default_rng(0))
        q.avg = 0.0
        assert q._drop_probability() == 0.0
        q.avg = 10.0
        assert 0 < q._drop_probability() < 0.1
        q.avg = 20.0  # gentle region
        assert 0.1 <= q._drop_probability() < 1.0
        q.avg = 40.0
        assert q._drop_probability() == 1.0
