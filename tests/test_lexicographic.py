"""Tests for the exact lexicographic-optimal reference, and agreement with
the greedy oracle on tree instances (Sarkar & Tassiulas background)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.lexicographic import allocation_feasible, lexicographic_optimal
from repro.baselines.oracle import optimal_levels
from repro.baselines.session_plan import SessionPlan
from repro.media.layers import PAPER_SCHEDULE
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def star(access_bws, hub_bw=10e6):
    net = Network(Scheduler())
    net.add_node("src")
    net.add_node("hub")
    net.add_link("src", "hub", bandwidth=hub_bw)
    plan = SessionPlan(0, "src", PAPER_SCHEDULE)
    for i, bw in enumerate(access_bws):
        net.add_node(f"r{i}")
        net.add_link("hub", f"r{i}", bandwidth=bw)
        plan.add_receiver(f"R{i}", f"r{i}")
    net.build_routes()
    return net, plan


def shared_sessions(n, cap):
    net = Network(Scheduler())
    net.add_node("x")
    net.add_node("y")
    net.add_link("x", "y", bandwidth=cap)
    plans = []
    for i in range(n):
        net.add_node(f"s{i}")
        net.add_node(f"r{i}")
        net.add_link(f"s{i}", "x", bandwidth=10e6)
        net.add_link("y", f"r{i}", bandwidth=10e6)
        plan = SessionPlan(i, f"s{i}", PAPER_SCHEDULE)
        plan.add_receiver(f"R{i}", f"r{i}")
        plans.append(plan)
    net.build_routes()
    return net, plans


def test_feasibility_checker():
    net, plan = star([500e3, 100e3])
    ok = {(0, "R0"): 4, (0, "R1"): 2}
    too_much = {(0, "R0"): 5, (0, "R1"): 2}
    assert allocation_feasible(net, [plan], ok)
    assert not allocation_feasible(net, [plan], too_much)


def test_lexicographic_matches_closed_form_topology_a():
    net, plan = star([500e3, 100e3])
    levels = lexicographic_optimal(net, [plan])
    assert levels == {(0, "R0"): 4, (0, "R1"): 2}


def test_lexicographic_shared_link_split():
    net, plans = shared_sessions(2, cap=1_000_000)
    levels = lexicographic_optimal(net, plans)
    # 1 Mb/s shared: (4,4) costs 960k <= 1M; (5,4) costs 1472k infeasible.
    assert levels == {(0, "R0"): 4, (1, "R1"): 4}


def test_lexicographic_prefers_poorest_first():
    # Capacity fits (2,2) = 192k or (1,3) = 256k... with 224k: sorted vec
    # (2,2) > (1,3) lexicographically (worst-off first).
    net, plans = shared_sessions(2, cap=224_000)
    levels = lexicographic_optimal(net, plans)
    assert sorted(levels.values()) == [2, 2]


def test_receiver_cap_enforced():
    net, plans = shared_sessions(2, cap=1e6)
    with pytest.raises(ValueError):
        lexicographic_optimal(net, plans, max_receivers=1)


@given(
    st.lists(
        st.sampled_from([50e3, 100e3, 250e3, 500e3, 1e6]),
        min_size=1,
        max_size=4,
    ),
    st.sampled_from([500e3, 1e6, 4e6, 10e6]),
)
@settings(max_examples=25, deadline=None)
def test_greedy_oracle_equals_lexicographic_on_single_session_trees(access, hub):
    """For one session on a tree, the greedy layer-by-layer oracle reaches
    the lexicographic optimum (levels decouple per receiver up to the
    shared max)."""
    net, plan = star(access, hub_bw=hub)
    greedy = optimal_levels(net, [plan])
    exact = lexicographic_optimal(net, [plan])
    assert sorted(greedy.values()) == sorted(exact.values())


@given(
    st.integers(min_value=2, max_value=3),
    st.sampled_from([500e3, 960e3, 1.5e6, 2e6, 4e6]),
)
@settings(max_examples=20, deadline=None)
def test_greedy_matches_lexicographic_on_symmetric_shared_link(n, cap):
    """Symmetric competing sessions: round-robin greedy = lexicographic."""
    net, plans = shared_sessions(n, cap)
    greedy = optimal_levels(net, plans)
    exact = lexicographic_optimal(net, plans)
    assert sorted(greedy.values()) == sorted(exact.values())
