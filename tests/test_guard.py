"""Unit tests for the report guard: validation, sequencing, strikes,
sibling-outlier audits, quarantine and rehabilitation.

These tests drive :class:`~repro.control.guard.ReportGuard` directly with
hand-built messages; the end-to-end behaviour over the simulated network
(byzantine receivers actually being quarantined and pruned) lives in
``tests/test_hardening.py``.
"""

import math

import pytest

from repro.control.guard import GuardConfig, ReportGuard
from repro.control.messages import Register, Report
from repro.core.session_topology import SessionTree
from repro.media.layers import LayerSchedule

SCHEDULE = LayerSchedule(n_layers=3, base_rate=32_000)
SID = 0
KEY = (SID, "R")


def report(loss=0.0, bytes_=None, level=2, t0=0.0, t1=1.0, seq=0, rid="R"):
    """A Report whose bytes default to the loss-free volume for ``level``."""
    if bytes_ is None:
        bytes_ = (1.0 - loss) * SCHEDULE.cumulative(level) * (t1 - t0) / 8.0
    return Report(
        receiver_id=rid, session_id=SID, loss_rate=loss, bytes=bytes_,
        level=level, t0=t0, t1=t1, seq=seq,
    )


def admit(guard, msg, key=KEY, registered=True, now=1.0, last_suggestion=None):
    return guard.admit_report(
        key, msg, SCHEDULE,
        registered=registered, now=now, last_suggestion=last_suggestion,
    )


def three_leaf_tree():
    """src -> agg -> {l1, l2, l3} hosting receivers R1..R3."""
    return SessionTree(
        SID, "src",
        [("src", "agg"), ("agg", "l1"), ("agg", "l2"), ("agg", "l3")],
        {"l1": "R1", "l2": "R2", "l3": "R3"},
    )


def audit(guard, reports, now=10.0, tree=None, fresh_within=5.0):
    """Feed ``{rid: Report}`` (arrived just now) through one audit pass."""
    tree = tree if tree is not None else three_leaf_tree()
    session_reports = {
        SID: {(SID, rid): (rep, now) for rid, rep in reports.items()}
    }
    guard.audit(now, session_reports, {SID: tree}, fresh_within)


# ----------------------------------------------------------------------
# Structural validation
# ----------------------------------------------------------------------
class TestReportValidation:
    @pytest.mark.parametrize("loss", [-0.1, 1.5, float("nan"), float("inf"), None, "x"])
    def test_loss_out_of_range(self, loss):
        guard = ReportGuard()
        msg = report().__class__(**{**report().__dict__, "loss_rate": loss})
        assert admit(guard, msg) == "loss_out_of_range"
        assert guard.rejections["loss_out_of_range"] == 1

    @pytest.mark.parametrize("bytes_", [-1.0, float("nan"), True])
    def test_bad_bytes(self, bytes_):
        guard = ReportGuard()
        assert admit(guard, report(bytes_=bytes_)) == "bad_bytes"

    def test_missing_bytes_rejected(self):
        guard = ReportGuard()
        msg = report().__class__(**{**report().__dict__, "bytes": None})
        assert admit(guard, msg) == "bad_bytes"

    @pytest.mark.parametrize("level", [-1, 4, 2.0, True, None])
    def test_level_out_of_schedule(self, level):
        guard = ReportGuard()
        msg = report().__class__(**{**report().__dict__, "level": level})
        assert admit(guard, msg) == "level_out_of_schedule"

    def test_level_zero_is_legal(self):
        guard = ReportGuard()
        assert admit(guard, report(level=0, bytes_=0.0)) is None

    def test_bad_interval(self):
        guard = ReportGuard()
        assert admit(guard, report(t0=2.0, t1=1.0, bytes_=0.0)) == "bad_interval"
        msg = report().__class__(**{**report().__dict__, "t0": float("nan")})
        assert admit(guard, msg) == "bad_interval"

    def test_unregistered_rejected(self):
        guard = ReportGuard()
        assert admit(guard, report(), registered=False) == "unregistered"

    def test_unknown_session_rejected(self):
        guard = ReportGuard()
        reason = guard.admit_report(
            KEY, report(), None, registered=True, now=1.0
        )
        assert reason == "unknown_session"

    def test_clean_report_accepted(self):
        guard = ReportGuard()
        assert admit(guard, report()) is None
        assert guard.rejections == {}
        assert guard.strikes(KEY) == 0.0

    def test_unknown_payload_counted(self):
        guard = ReportGuard()
        guard.note_malformed()
        assert guard.rejections["unknown_payload"] == 1


class TestRegisterValidation:
    def test_good_register_accepted(self):
        guard = ReportGuard()
        msg = Register("R", SID, "rcv", "rcv:0:R", seq=1)
        assert guard.admit_register(KEY, msg, known_session=True) is None

    def test_unknown_session(self):
        guard = ReportGuard()
        msg = Register("R", 99, "rcv", "rcv:0:R")
        assert guard.admit_register((99, "R"), msg, known_session=False) == "unknown_session"

    @pytest.mark.parametrize(
        "rid,port", [(None, "p"), ("R", ""), ("R", None), ("R", 7)]
    )
    def test_malformed_register(self, rid, port):
        guard = ReportGuard()
        msg = Register(rid, SID, "rcv", port)
        assert guard.admit_register(KEY, msg, known_session=True) == "malformed_register"


# ----------------------------------------------------------------------
# Sequencing
# ----------------------------------------------------------------------
class TestSequencing:
    def test_increasing_seq_accepted(self):
        guard = ReportGuard()
        for seq in (1, 2, 5):
            assert admit(guard, report(seq=seq)) is None

    def test_duplicate_and_reordered_rejected(self):
        guard = ReportGuard()
        assert admit(guard, report(seq=3)) is None
        assert admit(guard, report(seq=3)) == "stale_seq"   # duplicate
        assert admit(guard, report(seq=2)) == "stale_seq"   # straggler
        assert admit(guard, report(seq=4)) is None
        assert guard.rejections["stale_seq"] == 2

    def test_seq_zero_skips_the_check(self):
        guard = ReportGuard()
        assert admit(guard, report(seq=5)) is None
        for _ in range(3):
            assert admit(guard, report(seq=0)) is None

    @pytest.mark.parametrize("seq", [-1, True, 1.0, "x", None])
    def test_bad_seq_rejected(self, seq):
        guard = ReportGuard()
        msg = report().__class__(**{**report().__dict__, "seq": seq})
        assert admit(guard, msg) == "bad_seq"

    def test_register_and_report_share_the_counter(self):
        guard = ReportGuard()
        reg = Register("R", SID, "rcv", "rcv:0:R", seq=5)
        assert guard.admit_register(KEY, reg, known_session=True) is None
        assert admit(guard, report(seq=5)) == "stale_seq"
        assert admit(guard, report(seq=6)) is None

    def test_per_receiver_counters_are_independent(self):
        guard = ReportGuard()
        assert admit(guard, report(seq=9)) is None
        assert admit(guard, report(seq=1, rid="S"), key=(SID, "S")) is None


# ----------------------------------------------------------------------
# Behavioural strikes
# ----------------------------------------------------------------------
class TestConsistencyStrikes:
    def test_lie_high_strikes_and_quarantines(self):
        guard = ReportGuard()
        # Claimed 0.9 loss while the byte count says everything arrived.
        for i in range(3):
            lie = report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0)
            assert admit(guard, lie, now=float(i)) is None  # accepted, scored
        assert guard.strike_counts["inconsistent_loss"] == 3
        assert guard.is_quarantined(KEY)
        assert guard.quarantines == 1
        assert guard.drain_transitions() == [(KEY, "quarantined", 2.0)]
        assert guard.drain_transitions() == []  # drained

    def test_consistent_loss_not_struck(self):
        guard = ReportGuard()
        assert admit(guard, report(loss=0.4)) is None  # bytes match the loss
        assert guard.strikes(KEY) == 0.0

    def test_under_claim_direction_not_struck(self):
        # Fewer bytes than the level implies (mid-interval join) is honest.
        guard = ReportGuard()
        assert admit(guard, report(loss=0.0, bytes_=0.0)) is None
        assert guard.strikes(KEY) == 0.0

    def test_tiny_interval_carries_no_signal(self):
        guard = ReportGuard()
        lie = report(loss=1.0, bytes_=10_000.0, level=1, t0=0.0, t1=0.1)
        assert admit(guard, lie) is None
        assert guard.strikes(KEY) == 0.0  # expected bits below the floor

    def test_strikes_capped(self):
        guard = ReportGuard()
        for i in range(10):
            admit(guard, report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0),
                  now=float(i))
        assert guard.strikes(KEY) == GuardConfig().max_strikes


class TestDisobedienceStrikes:
    def test_far_above_suggestion_strikes(self):
        guard = ReportGuard()
        assert admit(guard, report(level=3), last_suggestion=1) is None
        assert guard.strike_counts["disobedience"] == 1

    def test_one_layer_climb_is_legal(self):
        guard = ReportGuard()
        assert admit(guard, report(level=2), last_suggestion=1) is None
        assert "disobedience" not in guard.strike_counts

    def test_no_suggestion_no_strike(self):
        guard = ReportGuard()
        assert admit(guard, report(level=3)) is None
        assert guard.strike_counts == {}


# ----------------------------------------------------------------------
# Sibling-outlier audit
# ----------------------------------------------------------------------
class TestSiblingAudit:
    def test_near_zero_outlier_struck(self):
        guard = ReportGuard()
        audit(guard, {
            "R1": report(loss=0.4, rid="R1", level=3),
            "R2": report(loss=0.35, rid="R2", level=3),
            "R3": report(loss=0.0, rid="R3", level=3),
        })
        assert guard.strike_counts == {"under_report": 1}
        assert guard.strikes((SID, "R3")) == 1.0

    def test_level_gate_protects_low_subscribers(self):
        # R3 subscribes fewer layers: legitimately sees less loss.
        guard = ReportGuard()
        audit(guard, {
            "R1": report(loss=0.4, rid="R1", level=3),
            "R2": report(loss=0.35, rid="R2", level=3),
            "R3": report(loss=0.0, rid="R3", level=1),
        })
        assert guard.strike_counts == {}

    def test_low_loss_floor_protects_modest_claims(self):
        # 0.1 is far below the siblings' 0.35+ but not "no loss at all".
        guard = ReportGuard()
        audit(guard, {
            "R1": report(loss=0.4, rid="R1", level=3),
            "R2": report(loss=0.35, rid="R2", level=3),
            "R3": report(loss=0.1, rid="R3", level=3),
        })
        assert guard.strike_counts == {}

    def test_lie_high_sibling_cannot_frame_honest_receivers(self):
        # Min-based floor: one inflated report cannot push honest zero-loss
        # receivers over the margin while another honest sibling agrees.
        guard = ReportGuard()
        audit(guard, {
            "R1": report(loss=0.9, rid="R1", level=3),
            "R2": report(loss=0.0, rid="R2", level=3),
            "R3": report(loss=0.0, rid="R3", level=3),
        })
        assert guard.strike_counts == {}

    def test_stale_reports_ignored(self):
        # The same reports strike R3 when fresh (see the first test), but
        # with both siblings silent for too long there is no live group to
        # compare against, so R3 walks free.
        guard = ReportGuard()
        tree = three_leaf_tree()
        session_reports = {SID: {
            (SID, "R1"): (report(loss=0.4, rid="R1", level=3), 1.0),   # stale
            (SID, "R2"): (report(loss=0.35, rid="R2", level=3), 1.0),  # stale
            (SID, "R3"): (report(loss=0.0, rid="R3", level=3), 10.0),
        }}
        guard.audit(10.0, session_reports, {SID: tree}, fresh_within=5.0)
        assert guard.strike_counts == {}

    def test_quarantined_sibling_excluded_from_statistics(self):
        guard = ReportGuard()
        key1 = (SID, "R1")
        for i in range(3):  # quarantine R1 via consistency lies
            admit(guard, report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0,
                                rid="R1"), key=key1, now=float(i))
        assert guard.is_quarantined(key1)
        guard.drain_transitions()
        # R1 claims 0.9; with R1 excluded, R3's floor comes from R2 alone.
        audit(guard, {
            "R1": report(loss=0.9, rid="R1", level=3),
            "R2": report(loss=0.02, rid="R2", level=3),
            "R3": report(loss=0.0, rid="R3", level=3),
        })
        assert "under_report" not in guard.strike_counts

    def test_lone_receiver_never_audited(self):
        guard = ReportGuard()
        audit(guard, {"R3": report(loss=0.0, rid="R3", level=3)})
        assert guard.strike_counts == {}


# ----------------------------------------------------------------------
# Decay, rehabilitation, lifecycle
# ----------------------------------------------------------------------
class TestDecayAndRehab:
    def test_clean_audit_decays_strikes(self):
        guard = ReportGuard()
        admit(guard, report(level=3), last_suggestion=1)  # one strike
        assert guard.strikes(KEY) == 1.0
        audit(guard, {})  # clean pass
        audit(guard, {})
        assert guard.strikes(KEY) == 0.0

    def test_striking_audit_resets_the_clean_streak(self):
        cfg = GuardConfig(rehab_intervals=2)
        guard = ReportGuard(cfg)
        for i in range(3):
            admit(guard, report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0),
                  now=float(i))
        assert guard.is_quarantined(KEY)
        audit(guard, {})  # absorbs the quarantine strike flag
        admit(guard, report(level=3), last_suggestion=1)  # strike again
        audit(guard, {"R": report(level=3)})  # absorbs it: streak stays 0
        audit(guard, {})  # streak 1
        assert guard.is_quarantined(KEY)  # 2 not yet reached
        audit(guard, {})  # streak 2: released
        assert not guard.is_quarantined(KEY)

    def test_rehabilitation_releases_and_resets(self):
        cfg = GuardConfig(rehab_intervals=3)
        guard = ReportGuard(cfg)
        for i in range(3):
            admit(guard, report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0),
                  now=float(i))
        guard.drain_transitions()
        # The first clean audit only absorbs the strike flag; the clean
        # streak starts counting from the next one.
        for _ in range(3):
            audit(guard, {}, now=20.0)
        assert guard.is_quarantined(KEY)
        audit(guard, {}, now=20.0)
        assert not guard.is_quarantined(KEY)
        assert guard.strikes(KEY) == 0.0
        assert guard.releases == 1
        assert guard.drain_transitions() == [(KEY, "released", 20.0)]

    def test_forget_drops_record_and_seq(self):
        guard = ReportGuard()
        admit(guard, report(seq=7, level=3), last_suggestion=1)
        guard.forget(KEY)
        assert guard.strikes(KEY) == 0.0
        assert admit(guard, report(seq=1)) is None  # seq restarted

    def test_reset_clears_receivers_keeps_counters(self):
        guard = ReportGuard()
        admit(guard, report(seq=7, level=3), last_suggestion=1)
        admit(guard, report(seq=7))  # stale
        guard.reset()
        assert guard.quarantined_keys() == set()
        assert admit(guard, report(seq=1)) is None
        assert guard.rejections["stale_seq"] == 1  # history survives

    def test_summary_shape(self):
        guard = ReportGuard()
        for i in range(3):
            admit(guard, report(loss=0.9, bytes_=SCHEDULE.cumulative(2) / 8.0),
                  now=float(i))
        s = guard.summary()
        assert s["quarantines"] == 1
        assert s["strikes"] == {"inconsistent_loss": 3}
        assert s["quarantined"] == [str(KEY)]
        kinds = [e["kind"] for e in s["events"]]
        assert kinds == ["strike", "strike", "strike", "quarantine"]


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestGuardConfig:
    @pytest.mark.parametrize("kwargs", [
        {"consistency_tolerance": 0.0},
        {"outlier_margin": -0.1},
        {"low_loss_floor": 1.5},
        {"disobey_margin": -1},
        {"strike_threshold": 0.0},
        {"strike_decay": -0.5},
        {"max_strikes": 1.0},  # below strike_threshold
        {"rehab_intervals": 0},
        {"min_siblings": 0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GuardConfig(**kwargs)

    def test_defaults_are_valid(self):
        cfg = GuardConfig()
        assert cfg.strike_threshold <= cfg.max_strikes
        assert math.isfinite(cfg.consistency_tolerance)
