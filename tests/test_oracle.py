"""Unit tests for the oracle (optimal subscription) baseline."""

import pytest

from repro.baselines.oracle import OracleController, optimal_levels
from repro.baselines.session_plan import SessionPlan
from repro.core.session_topology import SessionTree
from repro.core.types import SessionInput
from repro.media.layers import PAPER_SCHEDULE
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def topology_a_network(class_a_bw=500e3, class_b_bw=100e3):
    net = Network(Scheduler())
    for n in ["src", "core", "agg_a", "agg_b", "ra", "rb"]:
        net.add_node(n)
    net.add_link("src", "core", bandwidth=10e6)
    net.add_link("core", "agg_a", bandwidth=10e6)
    net.add_link("core", "agg_b", bandwidth=10e6)
    net.add_link("agg_a", "ra", bandwidth=class_a_bw)
    net.add_link("agg_b", "rb", bandwidth=class_b_bw)
    net.build_routes()
    plan = SessionPlan(0, "src", PAPER_SCHEDULE)
    plan.add_receiver("RA", "ra")
    plan.add_receiver("RB", "rb")
    return net, plan


def test_heterogeneous_receivers_get_their_bottleneck_levels():
    net, plan = topology_a_network()
    levels = optimal_levels(net, [plan])
    assert levels[(0, "RA")] == 4  # 480k fits 500k
    assert levels[(0, "RB")] == 2  # 96k fits 100k


def test_shared_bottleneck_splits_fairly():
    """Topology B: n sessions, shared link n*500k -> 4 layers each."""
    net = Network(Scheduler())
    n = 4
    net.add_node("x")
    net.add_node("y")
    net.add_link("x", "y", bandwidth=n * 500e3)
    plans = []
    for i in range(n):
        net.add_node(f"s{i}")
        net.add_node(f"r{i}")
        net.add_link(f"s{i}", "x", bandwidth=10e6)
        net.add_link("y", f"r{i}", bandwidth=10e6)
        plan = SessionPlan(i, f"s{i}", PAPER_SCHEDULE)
        plan.add_receiver(f"rx{i}", f"r{i}")
        plans.append(plan)
    net.build_routes()
    levels = optimal_levels(net, plans)
    assert all(levels[(i, f"rx{i}")] == 4 for i in range(n))


def test_multicast_load_counts_max_not_sum():
    """Two receivers of one session behind a shared 500k link: the link
    carries max(levels), so both can reach level 4."""
    net = Network(Scheduler())
    for n in ["src", "mid", "r1", "r2"]:
        net.add_node(n)
    net.add_link("src", "mid", bandwidth=500e3)
    net.add_link("mid", "r1", bandwidth=10e6)
    net.add_link("mid", "r2", bandwidth=10e6)
    net.build_routes()
    plan = SessionPlan(0, "src", PAPER_SCHEDULE)
    plan.add_receiver("R1", "r1")
    plan.add_receiver("R2", "r2")
    levels = optimal_levels(net, [plan])
    assert levels[(0, "R1")] == 4
    assert levels[(0, "R2")] == 4


def test_unbounded_network_reaches_top_level():
    net = Network(Scheduler())
    net.add_node("s")
    net.add_node("r")
    net.add_link("s", "r", bandwidth=100e6)
    net.build_routes()
    plan = SessionPlan(0, "s", PAPER_SCHEDULE)
    plan.add_receiver("R", "r")
    levels = optimal_levels(net, [plan])
    assert levels[(0, "R")] == 6


def test_headroom_reserves_capacity():
    net, plan = topology_a_network(class_a_bw=500e3)
    levels = optimal_levels(net, [plan], headroom=0.9)
    # 480k > 450k -> only 3 layers with 10% headroom.
    assert levels[(0, "RA")] == 3


def test_infeasible_base_still_reports_base():
    net, plan = topology_a_network(class_b_bw=10e3)  # base 32k doesn't fit
    levels = optimal_levels(net, [plan])
    assert levels[(0, "RB")] == 1


def test_invalid_headroom():
    net, plan = topology_a_network()
    with pytest.raises(ValueError):
        optimal_levels(net, [plan], headroom=0.0)
    with pytest.raises(ValueError):
        optimal_levels(net, [plan], headroom=1.5)


def test_duplicate_receiver_rejected():
    plan = SessionPlan(0, "s", PAPER_SCHEDULE)
    plan.add_receiver("R", "n")
    with pytest.raises(ValueError):
        plan.add_receiver("R", "other")


def test_oracle_controller_suggests_precomputed_levels():
    net, plan = topology_a_network()
    ctrl = OracleController(net, [plan])
    tree = SessionTree(
        0, "src",
        [("src", "core"), ("core", "agg_a"), ("agg_a", "ra"),
         ("core", "agg_b"), ("agg_b", "rb")],
        {"ra": "RA", "rb": "RB"},
    )
    out = ctrl.update(0.0, [SessionInput(tree=tree, schedule=PAPER_SCHEDULE)])
    assert out.levels[(0, "RA")] == 4
    assert out.levels[(0, "RB")] == 2


def test_oracle_controller_ignores_unknown_receivers():
    net, plan = topology_a_network()
    ctrl = OracleController(net, [plan])
    tree = SessionTree(0, "src", [("src", "core")], {"core": "GHOST"})
    out = ctrl.update(0.0, [SessionInput(tree=tree, schedule=PAPER_SCHEDULE)])
    assert len(out) == 0
