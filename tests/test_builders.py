"""Unit tests for the pluggable tree-builder backends."""

import pytest

from repro.multicast.builders import (
    BUILDER_NAMES,
    DegreeBoundedBuilder,
    ProtectedTreeBuilder,
    SPTBuilder,
    TreeBuilder,
    TreePatch,
    make_builder,
)
from repro.multicast.manager import GroupState, MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def _network(nodes, links):
    """Build a routed Network from ``nodes`` and ``(a, b, delay)`` links."""
    sched = Scheduler()
    net = Network(sched)
    for name in nodes:
        net.add_node(name)
    for a, b, delay in links:
        net.add_link(a, b, bandwidth=1e6, delay=delay)
    net.build_routes()
    return sched, net


def diamond_network():
    r"""Redundant diamond: every single-link failure leaves it connected.

        src - core - a - r1
                \    |(cross, slow)
                 b - r2
    """
    return _network(
        ["src", "core", "a", "b", "r1", "r2"],
        [
            ("src", "core", 0.1),
            ("core", "a", 0.1),
            ("core", "b", 0.1),
            ("a", "b", 0.5),
            ("a", "r1", 0.1),
            ("b", "r2", 0.1),
        ],
    )


def chain_with_detour():
    r"""Chain src-core-a-b-m plus a slow detour core-alt-b.

    Cutting core--a orphans {a, b, m}; the only backup path re-enters the
    subtree at ``b`` (not at its old root ``a``), forcing a re-root.
    """
    return _network(
        ["src", "core", "a", "b", "m", "alt"],
        [
            ("src", "core", 0.1),
            ("core", "a", 0.1),
            ("a", "b", 0.1),
            ("b", "m", 0.1),
            ("core", "alt", 0.3),
            ("alt", "b", 0.3),
        ],
    )


def _state(source, edges, group=1):
    st = GroupState(group, source)
    st.edges = set(edges)
    return st


def _spt_union(net, source, members):
    edges = set()
    for m in members:
        path = net.shortest_path_or_none(source, m)
        for u, v in zip(path, path[1:]):
            edges.add((u, v))
    return edges


def _out_degree(edges):
    deg = {}
    for u, _v in edges:
        deg[u] = deg.get(u, 0) + 1
    return deg


def _in_degree(edges):
    deg = {}
    for _u, v in edges:
        deg[v] = deg.get(v, 0) + 1
    return deg


def _covers(edges, source, members):
    """True when every member is reachable from ``source`` over ``edges``."""
    children = {}
    for u, v in edges:
        children.setdefault(u, []).append(v)
    seen = {source}
    stack = [source]
    while stack:
        for child in children.get(stack.pop(), ()):
            if child not in seen:
                seen.add(child)
                stack.append(child)
    return set(members) <= seen


# ----------------------------------------------------------------------
# TreePatch
# ----------------------------------------------------------------------
def test_tree_patch_apply_does_not_mutate_input():
    patch = TreePatch(removed=[("a", "b")], added=[("c", "b")])
    edges = {("s", "a"), ("a", "b")}
    patched = patch.apply(edges)
    assert patched == {("s", "a"), ("c", "b")}
    assert edges == {("s", "a"), ("a", "b")}


# ----------------------------------------------------------------------
# SPT backend
# ----------------------------------------------------------------------
def test_spt_matches_shortest_path_union():
    _sched, net = diamond_network()
    edges = SPTBuilder().build("src", ["r1", "r2"], net)
    assert edges == _spt_union(net, "src", ["r1", "r2"])
    assert edges == {
        ("src", "core"), ("core", "a"), ("core", "b"),
        ("a", "r1"), ("b", "r2"),
    }


def test_spt_is_manager_default_and_identical_to_inline_tree():
    sched, net = diamond_network()
    m = MulticastManager(net, igmp_report_delay=0.0)
    assert isinstance(m.builder, SPTBuilder)
    g = m.create_group("src")
    m.join(g, "r1")
    m.join(g, "r2")
    sched.run(until=2.0)
    assert m.tree_edges(g) == frozenset(_spt_union(net, "src", ["r1", "r2"]))


def test_spt_skips_unreachable_members():
    _sched, net = _network(["src", "a", "island"], [("src", "a", 0.1)])
    assert SPTBuilder().build("src", ["a", "island"], net) == {("src", "a")}


# ----------------------------------------------------------------------
# Degree-bounded backend
# ----------------------------------------------------------------------
def test_degree_bound_respected_when_detour_exists():
    # hub fans out to r1..r4, but the receivers are also chained together,
    # so a degree-2 tree can daisy-chain instead of star-ing off the hub.
    _sched, net = _network(
        ["src", "hub", "r1", "r2", "r3", "r4"],
        [
            ("src", "hub", 0.1),
            ("hub", "r1", 0.10),
            ("hub", "r2", 0.12),
            ("hub", "r3", 0.14),
            ("hub", "r4", 0.16),
            ("r1", "r2", 0.05),
            ("r2", "r3", 0.05),
            ("r3", "r4", 0.05),
        ],
    )
    members = ["r1", "r2", "r3", "r4"]
    spt = SPTBuilder().build("src", members, net)
    assert _out_degree(spt)["hub"] == 4  # the shape the bound is meant to avoid
    edges = DegreeBoundedBuilder(max_degree=2).build("src", members, net)
    assert _covers(edges, "src", members)
    assert max(_out_degree(edges).values()) <= 2
    assert max(_in_degree(edges).values()) <= 1  # still a tree


def test_degree_bound_falls_back_to_shortest_path_when_unsatisfiable():
    # Pure star: every attach path runs through the hub, so the bound is
    # unsatisfiable; reachability must win over fan-out.
    members = ["r1", "r2", "r3"]
    _sched, net = _network(
        ["src", "hub"] + members,
        [("src", "hub", 0.1)] + [("hub", r, 0.1) for r in members],
    )
    edges = DegreeBoundedBuilder(max_degree=1).build("src", members, net)
    assert _covers(edges, "src", members)


def test_degree_builder_skips_unreachable_and_rejects_bad_bound():
    _sched, net = _network(["src", "a", "island"], [("src", "a", 0.1)])
    edges = DegreeBoundedBuilder().build("src", ["a", "island"], net)
    assert edges == {("src", "a")}
    with pytest.raises(ValueError):
        DegreeBoundedBuilder(max_degree=0)


# ----------------------------------------------------------------------
# Protected backend
# ----------------------------------------------------------------------
def test_protected_precomputes_backup_for_every_tree_edge():
    _sched, net = diamond_network()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["r1", "r2"], net))
    b.precompute(state, net)
    backups = b._backups[state.group]
    # src--core and the leaf access links have no alternative path; both
    # aggregation hops are protected by the cross link.
    assert set(backups) == {("core", "a"), ("core", "b")}
    assert backups[("core", "a")] == ("src", "core", "b", "a")


def test_protected_local_repair_splices_backup_branch():
    _sched, net = diamond_network()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["r1", "r2"], net))
    state.members = {"r1", "r2"}
    b.precompute(state, net)
    patch = b.repair(state, [("core", "a")], net)
    assert patch is not None
    assert patch.removed == frozenset({("core", "a")})
    assert patch.added == frozenset({("b", "a")})
    healed = patch.apply(state.edges)
    assert _covers(healed, "src", ["r1", "r2"])
    # The b branch never moved: repair was local to the orphaned subtree.
    assert {("core", "b"), ("b", "r2")} <= healed


def test_protected_repair_reroots_subtree_at_backup_entry():
    _sched, net = chain_with_detour()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["a", "m"], net))
    assert state.edges == {("src", "core"), ("core", "a"), ("a", "b"), ("b", "m")}
    b.precompute(state, net)
    patch = b.repair(state, [("core", "a")], net)
    assert patch is not None
    healed = patch.apply(state.edges)
    # The backup enters the orphaned subtree at b, so the a--b hop reverses.
    assert healed == {
        ("src", "core"), ("core", "alt"), ("alt", "b"), ("b", "m"), ("b", "a"),
    }
    assert _covers(healed, "src", ["a", "m"])
    assert max(_in_degree(healed).values()) <= 1


def test_protected_repair_refuses_multi_edge_loss():
    _sched, net = diamond_network()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["r1", "r2"], net))
    b.precompute(state, net)
    assert b.repair(state, [("core", "a"), ("core", "b")], net) is None


def test_protected_repair_refuses_dead_splice_edge():
    _sched, net = diamond_network()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["r1", "r2"], net))
    b.precompute(state, net)
    # The precomputed backup for core--a splices over a--b; kill that link
    # too (stale backup) and the patch must be rejected, not installed.
    net.graph.remove_edge("a", "b")
    net.graph.remove_edge("b", "a")
    assert b.repair(state, [("core", "a")], net) is None


def test_protected_repair_without_precompute_or_backup_is_none():
    _sched, net = diamond_network()
    b = ProtectedTreeBuilder()
    state = _state("src", b.build("src", ["r1", "r2"], net))
    assert b.repair(state, [("core", "a")], net) is None  # nothing precomputed
    b.precompute(state, net)
    assert b.repair(state, [("src", "core")], net) is None  # no backup exists
    assert b.repair(state, [("ghost", "edge")], net) is None  # not a tree edge


# ----------------------------------------------------------------------
# make_builder
# ----------------------------------------------------------------------
def test_make_builder_resolves_names_and_instances():
    assert set(BUILDER_NAMES) == {"spt", "degree", "protected"}
    assert isinstance(make_builder("spt"), SPTBuilder)
    assert isinstance(make_builder(None), SPTBuilder)
    assert isinstance(make_builder("protected"), ProtectedTreeBuilder)
    degree = make_builder("degree", max_degree=2)
    assert isinstance(degree, DegreeBoundedBuilder) and degree.max_degree == 2
    instance = SPTBuilder()
    assert make_builder(instance) is instance
    assert isinstance(make_builder("spt"), TreeBuilder)
    with pytest.raises(ValueError):
        make_builder("steiner-exact")
