"""Integration tests for the controller/receiver agents over the simulated
network (registration, reporting, suggestions, unilateral fallback)."""

import numpy as np
import pytest

from repro.baselines.static import StaticController
from repro.control.agent import ControllerAgent, ReceiverAgent
from repro.control.discovery import TopologyDiscovery
from repro.control.session import SessionDescriptor
from repro.core.types import SuggestionSet
from repro.media.layers import LayerSchedule
from repro.media.receiver import LayeredReceiver
from repro.media.source import LayeredSource
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def build(n_layers=3, bandwidth=10e6, algorithm=None):
    """src -- mid -- rcv line with a source, receiver and controller."""
    sched = Scheduler()
    net = Network(sched)
    for name in ["src", "mid", "rcv"]:
        net.add_node(name)
    net.add_link("src", "mid", bandwidth=bandwidth, delay=0.05)
    net.add_link("mid", "rcv", bandwidth=bandwidth, delay=0.05)
    net.build_routes()
    mcast = MulticastManager(net, leave_latency=0.5, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = tuple(mcast.create_group("src") for _ in range(n_layers))
    desc = SessionDescriptor(0, "src", groups, schedule)
    source = LayeredSource(net.node("src"), 0, groups, schedule, model="cbr")
    source.start()
    receiver = LayeredReceiver(
        net.node("rcv"), 0, list(groups), schedule, mcast,
        receiver_id="R", initial_level=1,
    )
    if algorithm is None:
        algorithm = StaticController(level=2)
    discovery = TopologyDiscovery(mcast, staleness=0.0)
    controller = ControllerAgent(net.node("src"), [desc], discovery, algorithm, interval=1.0)
    agent = ReceiverAgent(receiver, "src", interval=1.0, rng=np.random.default_rng(0))
    return sched, net, mcast, desc, receiver, controller, agent


def test_registration_handshake():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    agent.start()
    sched.run(until=3.0)
    assert agent.registered
    assert (0, "R") in controller.registrations
    assert controller.registrations[(0, "R")].node == "rcv"


def test_reports_flow_to_controller():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    agent.start()
    sched.run(until=5.0)
    assert controller.reports_received >= 3
    rep = controller.latest_reports[(0, "R")]
    assert rep.level >= 1
    assert 0.0 <= rep.loss_rate <= 1.0


def test_suggestions_obeyed():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    agent.start()
    sched.run(until=10.0)
    # Static controller says level 2; receiver should sit there.
    assert receiver.level == 2
    assert agent.suggestions_received >= 1


def test_upward_suggestions_one_layer_at_a_time():
    sched, net, mcast, desc, receiver, controller, agent = build(
        algorithm=StaticController(level=3)
    )
    controller.start()
    agent.start()
    sched.run(until=20.0)
    assert receiver.level == 3
    # The climb must have passed through level 2.
    values = receiver.trace.values
    assert 2 in values


def test_downward_suggestion_applied_immediately():
    class DropController:
        def __init__(self):
            self.calls = 0

        def update(self, now, sessions):
            self.calls += 1
            out = SuggestionSet()
            level = 3 if self.calls < 8 else 1
            for si in sessions:
                for rid in si.tree.receivers.values():
                    out.levels[(si.session_id, rid)] = level
            return out

    sched, net, mcast, desc, receiver, controller, agent = build(algorithm=DropController())
    controller.start()
    agent.start()
    sched.run(until=6.0)
    assert receiver.level == 3
    sched.run(until=12.0)
    assert receiver.level == 1  # dropped straight down, not one at a time


def test_controller_tick_counts():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    agent.start()
    sched.run(until=10.5)
    # Ticks start at 1.75 * interval, then every interval.
    assert controller.updates_run == 9
    assert controller.suggestions_sent >= controller.updates_run - 1


def test_unilateral_drop_when_controller_silent():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    agent.start()
    sched.run(until=5.0)
    assert receiver.level == 2
    # Sever the control path: every outgoing controller message vanishes
    # (as if congestion ate all suggestion packets).
    controller._send_to = lambda *a, **k: None
    # Starve the receiver of data too so it sees loss (silence detection).
    for g in desc.groups:
        net.node("src").mcast_fwd.pop(g, None)
    sched.run(until=20.0)
    assert agent.unilateral_drops >= 1
    assert receiver.level < 2


def test_no_unilateral_before_first_suggestion():
    sched, net, mcast, desc, receiver, controller, agent = build()
    # Controller never started: no suggestions at all.
    agent.start()
    sched.run(until=15.0)
    assert agent.unilateral_drops == 0
    assert receiver.level == 1


def test_register_retries_until_ack():
    sched, net, mcast, desc, receiver, controller, agent = build()
    agent.start()  # controller not yet listening
    sched.run(until=2.5)
    assert not agent.registered
    controller.start()
    sched.run(until=10.0)
    assert agent.registered


def test_invalid_interval_rejected():
    sched = Scheduler()
    net = Network(sched)
    net.add_node("a")
    mcast = MulticastManager(net)
    disc = TopologyDiscovery(mcast)
    with pytest.raises(ValueError):
        ControllerAgent(net.node("a"), [], disc, StaticController(1), interval=0.0)


def test_add_session_after_construction():
    sched, net, mcast, desc, receiver, controller, agent = build()
    schedule = LayerSchedule(n_layers=2)
    groups = tuple(mcast.create_group("src") for _ in range(2))
    extra = SessionDescriptor(99, "src", groups, schedule)
    controller.add_session(extra)
    assert 99 in controller.sessions


def test_start_twice_is_noop():
    sched, net, mcast, desc, receiver, controller, agent = build()
    controller.start()
    controller.start()
    agent.start()
    agent.start()
    sched.run(until=5.5)
    assert controller.updates_run == 4  # not doubled


class TestGracefulDegradation:
    def test_orphaned_receiver_goes_unilateral_after_grace(self):
        # Receiver over-subscribed on a 100 Kb/s link (3 layers = 224 Kb/s)
        # and the controller never comes up: after ``unilateral_after`` of
        # never having heard a suggestion, it must shed layers on its own.
        sched, net, mcast, desc, receiver, controller, agent = build(
            bandwidth=100e3
        )
        receiver.set_level(3)
        agent.start()  # controller never started
        sched.run(until=20.0)
        assert agent.unilateral_drops >= 1
        assert receiver.level < 3

    def test_no_reregistration_while_controller_healthy(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        agent.reregister_after = 3.0
        controller.start()
        agent.start()
        sched.run(until=30.0)
        assert agent.reregistrations == 0
        assert agent.registered

    def test_silence_watchdog_drops_registration(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        agent.reregister_after = 3.0
        controller.start()
        agent.start()
        sched.run(until=5.0)
        assert agent.registered
        controller.stop()
        sched.run(until=15.0)
        assert agent.reregistrations >= 1

    def test_reregistration_after_controller_restart(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        agent.reregister_after = 3.0
        controller.start()
        agent.start()
        sched.run(until=5.0)
        controller.stop()
        sched.run(until=10.0)
        controller.start()
        sched.run(until=25.0)
        assert agent.registered
        assert agent.reregistrations >= 1
        # Suggestions resumed after the restart.
        assert any(t > 10.0 for t in agent.suggestion_times)

    def test_restart_does_not_double_tick(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        controller.start()
        sched.run(until=5.0)   # ticks at 1.75, 2.75, 3.75, 4.75
        assert controller.updates_run == 4
        controller.stop()
        sched.run(until=8.0)   # stopped: no ticks
        assert controller.updates_run == 4
        controller.start()     # new chain: 9.75, 10.75, ... one per interval
        sched.run(until=15.0)
        assert controller.updates_run == 4 + 6

    def test_negative_max_tree_age_rejected(self):
        from repro.baselines.static import StaticController
        from repro.control.discovery import TopologyDiscovery

        sched = Scheduler()
        net = Network(sched)
        net.add_node("a")
        mcast = MulticastManager(net)
        disc = TopologyDiscovery(mcast)
        with pytest.raises(ValueError):
            ControllerAgent(
                net.node("a"), [], disc, StaticController(1), max_tree_age=-1.0
            )
