"""Tests for the flash-crowd experiment (``python -m repro crowd``)."""

import json

import pytest

from repro.experiments.crowd import (
    build_crowd_scenario,
    default_crowd_spec,
    edge_node_names,
    render_crowd_report,
    run_crowd,
    strip_timings,
)
from repro.workloads import WorkloadSpec


def _small_sweep(**kw):
    defaults = dict(
        seed=2, duration=40.0, sizes=(12,), loss_rates=(0.0, 0.25),
        n_edges=3, incumbents=2, federated_crowd=6,
    )
    defaults.update(kw)
    return run_crowd(**defaults)


def test_crowd_sweep_passes_all_gates():
    result = _small_sweep()
    assert result["ok"]
    assert result["replay"]["identical"]
    assert result["attribution_ok"]
    assert result["control_ok"]
    assert result["federated"]["ok"]
    # Gate (b)'s substance: the lossy point's loss signal is channel noise
    # and the report carries stability alongside it.
    lossy = [p for p in result["points"] if p["loss_rate"] > 0]
    assert lossy
    for p in lossy:
        assert p["attribution"]["misattribution_rate"] > 0
        assert "max_changes" in p["stability"]
    # Every point saw the full crowd join.
    for p in result["points"]:
        assert p["workload"]["peak_live"] == p["size"]
    report = render_crowd_report(result)
    assert "bit-identical" in report
    assert "RESULT: OK" in report


def test_crowd_result_is_reproducible_and_json_safe():
    one = strip_timings(_small_sweep(federated_crowd=0))
    two = strip_timings(_small_sweep(federated_crowd=0))
    assert one == two
    json.dumps(one)  # fully serialisable
    assert all("wall_s" not in p for p in one["points"])


def test_crowd_explicit_spec_replays_and_rejects_multi_size():
    _sc, session_ids = build_crowd_scenario(seed=2, n_edges=3, incumbents=2)
    spec = default_crowd_spec(12, edge_node_names(3), session_ids,
                              duration=40.0, seed=2)
    loaded = WorkloadSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    fresh = strip_timings(_small_sweep(federated_crowd=0))
    replayed = strip_timings(_small_sweep(federated_crowd=0, spec=loaded))
    assert fresh == replayed
    with pytest.raises(ValueError, match="exactly one size"):
        _small_sweep(sizes=(4, 8), spec=loaded)


def test_crowd_argument_validation():
    with pytest.raises(ValueError):
        _small_sweep(sizes=())
    with pytest.raises(ValueError):
        _small_sweep(sizes=(0,))
    with pytest.raises(ValueError):
        build_crowd_scenario(wireless_loss=1.0)
    with pytest.raises(ValueError):
        build_crowd_scenario(n_edges=0)


def test_crowd_static_mode_beyond_max_controlled():
    result = _small_sweep(sizes=(20,), loss_rates=(0.0,), max_controlled=10,
                          federated_crowd=0)
    assert result["points"][0]["mode"] == "static"
    assert result["points"][0]["workload"]["peak_live"] == 20
