"""Tests for the billing/usage ledger (paper §II's billing remark)."""

import pytest

from repro.control.accounting import BillingLedger, UsageRecord
from repro.control.messages import Report
from repro.experiments.scenario import Scenario


def report(rid="R", sid=0, loss=0.0, bytes_=100_000.0, level=3, t0=0.0, t1=2.0):
    return Report(
        receiver_id=rid, session_id=sid, loss_rate=loss,
        bytes=bytes_, level=level, t0=t0, t1=t1,
    )


class TestLedger:
    def test_accumulates_bytes_and_layer_seconds(self):
        ledger = BillingLedger()
        ledger.record(report(bytes_=1e6, level=4, t0=0.0, t1=2.0))
        ledger.record(report(bytes_=2e6, level=2, t0=2.0, t1=4.0))
        rec = ledger.usage(0, "R")
        assert rec.bytes_delivered == pytest.approx(3e6)
        assert rec.layer_seconds == pytest.approx(4 * 2 + 2 * 2)
        assert rec.intervals == 2
        assert rec.megabytes == pytest.approx(3.0)
        assert rec.mean_level == pytest.approx(12 / 4)

    def test_charge_combines_volume_and_quality(self):
        ledger = BillingLedger(price_per_mb=1.0, price_per_layer_hour=3600.0)
        ledger.record(report(bytes_=5e6, level=2, t0=0.0, t1=10.0))
        # 5 MB * 1.0 + 20 layer-seconds = 20/3600 h * 3600 = 20.
        assert ledger.charge(0, "R") == pytest.approx(5.0 + 20.0)

    def test_invoice_and_revenue(self):
        ledger = BillingLedger(price_per_mb=1.0, price_per_layer_hour=0.0)
        ledger.record(report(rid="A", bytes_=1e6))
        ledger.record(report(rid="B", bytes_=2e6))
        inv = ledger.invoice()
        assert inv[(0, "A")] == pytest.approx(1.0)
        assert inv[(0, "B")] == pytest.approx(2.0)
        assert ledger.total_revenue() == pytest.approx(3.0)

    def test_unknown_receiver_raises(self):
        with pytest.raises(KeyError):
            BillingLedger().usage(0, "ghost")

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            BillingLedger(price_per_mb=-1)

    def test_mean_level_empty_span(self):
        rec = UsageRecord(0, "R")
        assert rec.mean_level == 0.0


class TestLedgerOnController:
    def test_controller_feeds_ledger(self):
        sc = Scenario(seed=1)
        sc.add_node("s")
        sc.add_node("r")
        sc.add_link("s", "r", bandwidth=10e6, delay=0.05)
        sess = sc.add_session("s", traffic="cbr")
        controller = sc.attach_controller("s")
        ledger = BillingLedger()
        controller.attach_ledger(ledger)
        sc.add_receiver(sess.session_id, "r", receiver_id="cust1")
        sc.run(30.0)
        rec = ledger.usage(sess.session_id, "cust1")
        assert rec.bytes_delivered > 0
        assert rec.layer_seconds > 0
        assert ledger.total_revenue() > 0
