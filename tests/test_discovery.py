"""Unit tests for the topology-discovery tool (staleness model)."""

import pytest

from repro.control.discovery import TopologyDiscovery
from repro.control.session import SessionDescriptor
from repro.media.layers import LayerSchedule
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def setup(n_layers=2):
    sched = Scheduler()
    net = Network(sched)
    for name in ["src", "mid", "r1", "r2"]:
        net.add_node(name)
    net.add_link("src", "mid", bandwidth=1e6, delay=0.1)
    net.add_link("mid", "r1", bandwidth=1e6, delay=0.1)
    net.add_link("mid", "r2", bandwidth=1e6, delay=0.1)
    net.build_routes()
    mcast = MulticastManager(net, leave_latency=0.5, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = tuple(mcast.create_group("src") for _ in range(n_layers))
    desc = SessionDescriptor("S", "src", groups, schedule)
    return sched, net, mcast, desc


def test_negative_staleness_rejected():
    sched, net, mcast, desc = setup()
    with pytest.raises(ValueError):
        TopologyDiscovery(mcast, staleness=-1.0)


def test_fresh_discovery_sees_current_tree():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast, staleness=0.0)
    mcast.join(desc.groups[0], "r1")
    sched.run(until=1.0)
    tree = disc.session_tree(desc, {"rcv1": "r1"})
    assert tree.root == "src"
    assert ("src", "mid") in tree.edges
    assert ("mid", "r1") in tree.edges
    assert tree.receivers == {"r1": "rcv1"}


def test_stale_discovery_sees_old_tree():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast, staleness=5.0)
    mcast.join(desc.groups[0], "r1")
    sched.run(until=2.0)
    mcast.join(desc.groups[0], "r2")
    sched.run(until=4.0)  # r2 joined at ~2.2; staleness 5 -> invisible
    tree = disc.session_tree(desc, {"rcv1": "r1", "rcv2": "r2"})
    assert ("mid", "r1") not in tree.edges or True  # r1 joined at ~0.2 also invisible
    # At t=4 with staleness 5 the snapshot is from t<=0: empty tree.
    assert tree.edges == frozenset()
    assert tree.receivers == {}


def test_staleness_window_moves_forward():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast, staleness=2.0)
    mcast.join(desc.groups[0], "r1")
    sched.run(until=1.0)
    assert disc.session_tree(desc, {"rcv1": "r1"}).receivers == {}
    sched.run(until=5.0)
    assert disc.session_tree(desc, {"rcv1": "r1"}).receivers == {"r1": "rcv1"}


def test_layer_overlay_from_multiple_groups():
    sched, net, mcast, desc = setup(n_layers=2)
    disc = TopologyDiscovery(mcast, staleness=0.0)
    mcast.join(desc.groups[0], "r1")
    mcast.join(desc.groups[0], "r2")
    mcast.join(desc.groups[1], "r2")  # only r2 takes layer 2
    sched.run(until=1.0)
    tree = disc.session_tree(desc, {"rcv1": "r1", "rcv2": "r2"})
    assert tree.layers_on_edge[("mid", "r2")] == 2
    assert tree.layers_on_edge[("mid", "r1")] == 1
    assert tree.layers_on_edge[("src", "mid")] == 2


def test_receiver_not_in_tree_omitted():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast, staleness=0.0)
    mcast.join(desc.groups[0], "r1")
    sched.run(until=1.0)
    # rcv2 registered but never joined: not in tree -> omitted.
    tree = disc.session_tree(desc, {"rcv1": "r1", "rcv2": "r2"})
    assert tree.receivers == {"r1": "rcv1"}


def test_query_counter():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast)
    disc.session_tree(desc, {})
    disc.session_tree(desc, {})
    assert disc.queries == 2


def test_explicit_now_parameter():
    sched, net, mcast, desc = setup()
    disc = TopologyDiscovery(mcast, staleness=0.0)
    mcast.join(desc.groups[0], "r1")
    sched.run(until=3.0)
    old = disc.session_tree(desc, {"rcv1": "r1"}, now=0.1)
    assert old.receivers == {}


class TestSessionDescriptor:
    def test_group_layer_mismatch_rejected(self):
        schedule = LayerSchedule(n_layers=3)
        with pytest.raises(ValueError):
            SessionDescriptor("S", "src", (1, 2), schedule)

    def test_group_for_layer(self):
        schedule = LayerSchedule(n_layers=2)
        d = SessionDescriptor("S", "src", (10, 11), schedule)
        assert d.group_for_layer(1) == 10
        assert d.group_for_layer(2) == 11
        with pytest.raises(ValueError):
            d.group_for_layer(0)
        with pytest.raises(ValueError):
            d.group_for_layer(3)

    def test_n_layers(self):
        schedule = LayerSchedule(n_layers=2)
        assert SessionDescriptor("S", "src", (1, 2), schedule).n_layers == 2


class TestDiscoveryFaults:
    def test_timeout_mode_raises(self):
        from repro.control.discovery import DiscoveryUnavailable

        sched, net, mcast, desc = setup()
        disc = TopologyDiscovery(mcast)
        mcast.join(desc.groups[0], "r1")
        sched.run(until=1.0)
        disc.set_fault("timeout")
        with pytest.raises(DiscoveryUnavailable):
            disc.session_tree(desc, {"rcv1": "r1"})
        assert disc.failed_queries == 1
        disc.clear_fault()
        tree = disc.session_tree(desc, {"rcv1": "r1"})
        assert tree.receivers == {"r1": "rcv1"}

    def test_truncate_mode_clips_tree(self):
        sched, net, mcast, desc = setup()
        disc = TopologyDiscovery(mcast)
        mcast.join(desc.groups[0], "r1")
        sched.run(until=1.0)
        disc.set_fault("truncate", truncate_depth=1)
        tree = disc.session_tree(desc, {"rcv1": "r1"})
        # Only the first hop below the root survives; r1 (2 hops) vanishes.
        assert tree.edges == frozenset({("src", "mid")})
        assert tree.receivers == {}
        assert disc.failed_queries == 1

    def test_unknown_fault_mode_rejected(self):
        sched, net, mcast, desc = setup()
        disc = TopologyDiscovery(mcast)
        with pytest.raises(ValueError):
            disc.set_fault("gremlins")
        with pytest.raises(ValueError):
            disc.set_fault("truncate", truncate_depth=-1)

    def test_group_without_history_yields_empty_layer(self):
        # A group that never saw a join has no snapshots; discovery must
        # degrade to an empty tree, not raise.
        sched, net, mcast, desc = setup()
        disc = TopologyDiscovery(mcast)
        tree = disc.session_tree(desc, {"rcv1": "r1"})
        assert tree.edges == frozenset()
        assert tree.receivers == {}
