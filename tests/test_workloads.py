"""Tests for the declarative workload engine: seeded builders, spec
round-tripping, the wireless edge link, shared membership mechanics (the
``membership_churn`` refactor regression), and deterministic replay."""

import json

import pytest

from repro.experiments.membership import churn_events, zipf_weights
from repro.experiments.scenario import Scenario
from repro.faults import FaultPlan
from repro.obs.bus import EventBus
from repro.simnet.link import DROP_REASONS, DROP_WIRELESS
from repro.simnet.wireless import WirelessEdgeLink
from repro.workloads import (
    ReceiverSpec,
    WorkloadEvent,
    WorkloadRunner,
    WorkloadSpec,
    assign_sessions,
    diurnal_leave_times,
    flash_crowd_times,
)


# ----------------------------------------------------------------------
# Seeded builders (satellite: determinism / round-trip / error paths)
# ----------------------------------------------------------------------
def test_flash_crowd_times_deterministic_per_seed():
    one = flash_crowd_times(100, 10.0, ramp=3.0, shape="exp", seed=5)
    two = flash_crowd_times(100, 10.0, ramp=3.0, shape="exp", seed=5)
    other = flash_crowd_times(100, 10.0, ramp=3.0, shape="exp", seed=6)
    assert one == two
    assert one != other
    assert len(one) == 100
    assert all(10.0 <= t < 13.0 for t in one)
    assert one == sorted(one)


@pytest.mark.parametrize("shape", ["linear", "exp", "step"])
def test_flash_crowd_times_shapes_stay_in_window(shape):
    times = flash_crowd_times(64, 2.0, ramp=4.0, shape=shape, seed=1)
    assert len(times) == 64
    assert all(2.0 <= t <= 6.0 for t in times)


def test_flash_crowd_times_error_paths():
    with pytest.raises(ValueError):
        flash_crowd_times(0, 1.0)
    with pytest.raises(ValueError):
        flash_crowd_times(10, 1.0, ramp=0.0)
    with pytest.raises(ValueError):
        flash_crowd_times(10, -1.0)
    with pytest.raises(ValueError):
        flash_crowd_times(10, 1.0, shape="sigmoid")
    with pytest.raises(ValueError):
        flash_crowd_times(10, 1.0, shape="step", steps=0)


def test_zipf_weights_error_paths():
    with pytest.raises(ValueError):
        zipf_weights(0, 1.1)
    with pytest.raises(ValueError):
        zipf_weights(4, 0.0)
    with pytest.raises(ValueError):
        zipf_weights(4, -1.0)


def test_zipf_sampler_prefers_early_sessions():
    pairs = assign_sessions([f"r{i}" for i in range(500)],
                            ["s0", "s1", "s2"], zipf_s=1.1, seed=3)
    counts = {}
    for _rid, sid in pairs:
        counts[sid] = counts.get(sid, 0) + 1
    assert counts["s0"] > counts["s1"] > counts.get("s2", 0)
    # Determinism under a fixed seed.
    assert pairs == assign_sessions([f"r{i}" for i in range(500)],
                                    ["s0", "s1", "s2"], zipf_s=1.1, seed=3)


def test_assign_sessions_error_paths():
    with pytest.raises(ValueError):
        assign_sessions([], ["s0"])
    with pytest.raises(ValueError):
        assign_sessions(["r0"], [])
    with pytest.raises(ValueError):
        assign_sessions(["r0"], ["s0"], zipf_s=0.0)


def test_diurnal_leave_times_deterministic_and_bounded():
    one = diurnal_leave_times(10.0, 70.0, period=30.0, peak_rate=0.8,
                              trough_rate=0.1, seed=2)
    assert one == diurnal_leave_times(10.0, 70.0, period=30.0, peak_rate=0.8,
                                      trough_rate=0.1, seed=2)
    assert all(10.0 <= t < 70.0 for t in one)
    assert one == sorted(one)


# ----------------------------------------------------------------------
# WorkloadSpec: validation + JSON round-trip
# ----------------------------------------------------------------------
def _small_spec(size=12, seed=4):
    spec = WorkloadSpec()
    spec.zipf_sessions([f"c{i}" for i in range(size)], ["e0", "e1"],
                       ["s0", "s1"], seed=seed)
    spec.flash_crowd(at=5.0, size=size, ramp=2.0, seed=seed + 1)
    spec.diurnal_churn(10.0, 40.0, period=15.0, peak_rate=0.5,
                       trough_rate=0.05, seed=seed + 2)
    return spec


def test_spec_json_round_trip_is_equal():
    spec = _small_spec()
    data = json.loads(json.dumps(spec.to_dict()))
    clone = WorkloadSpec.from_dict(data)
    assert clone.to_dict() == spec.to_dict()
    assert [(e.time, e.kind, e.receiver_id) for e in clone] == \
           [(e.time, e.kind, e.receiver_id) for e in spec]


def test_spec_rejects_unknown_and_duplicate_receivers():
    spec = WorkloadSpec()
    spec.add_receiver("c0", "e0", "s0")
    with pytest.raises(ValueError):
        spec.add_receiver("c0", "e1", "s0")
    with pytest.raises(KeyError):
        spec.join(1.0, "ghost")
    with pytest.raises(ValueError):
        WorkloadEvent(-1.0, "join", "c0")
    with pytest.raises(ValueError):
        WorkloadEvent(1.0, "teleport", "c0")
    with pytest.raises(ValueError):
        ReceiverSpec("c1", "e0", "s0", mode="psychic")


def test_flash_crowd_larger_than_pool_raises():
    spec = WorkloadSpec()
    for i in range(4):
        spec.add_receiver(f"c{i}", "e0", "s0")
    with pytest.raises(ValueError, match="exceeds the receiver pool"):
        spec.flash_crowd(at=1.0, size=5)


def test_spec_builder_events_are_deterministic():
    assert _small_spec().to_dict() == _small_spec().to_dict()
    assert _small_spec(seed=4).to_dict() != _small_spec(seed=9).to_dict()


def test_spec_churn_matches_shared_churn_events():
    pool = ["a", "b", "c"]
    spec = WorkloadSpec()
    for rid in pool:
        spec.add_receiver(rid, "e0", "s0")
    spec.churn(5.0, 40.0, rate=0.2, seed=7)
    expected = sorted(
        (round(t, 6), kind, rid)
        for kind, t, rid in churn_events(pool, 5.0, 40.0, rate=0.2, seed=7)
    )
    assert [(e.time, e.kind, e.receiver_id) for e in spec] == expected


# ----------------------------------------------------------------------
# membership_churn refactor regression (bit-identical golden replay)
# ----------------------------------------------------------------------
GOLDEN_CHURN_SEED7 = [
    {"time": 12.075293, "kind": "receiver_leave", "args": ["D"], "kwargs": {}},
    {"time": 21.026391, "kind": "receiver_leave", "args": ["A"], "kwargs": {}},
    {"time": 21.123927, "kind": "receiver_leave", "args": ["C"], "kwargs": {}},
    {"time": 22.280778, "kind": "receiver_join", "args": ["D"], "kwargs": {}},
    {"time": 24.129268, "kind": "receiver_leave", "args": ["A"], "kwargs": {}},
    {"time": 30.356672, "kind": "receiver_join", "args": ["A"], "kwargs": {}},
    {"time": 31.500483, "kind": "receiver_join", "args": ["C"], "kwargs": {}},
    {"time": 32.014819, "kind": "receiver_join", "args": ["A"], "kwargs": {}},
    {"time": 33.126969, "kind": "receiver_leave", "args": ["A"], "kwargs": {}},
    {"time": 35.347682, "kind": "receiver_leave", "args": ["D"], "kwargs": {}},
    {"time": 41.163355, "kind": "receiver_join", "args": ["A"], "kwargs": {}},
    {"time": 45.688977, "kind": "receiver_join", "args": ["D"], "kwargs": {}},
]


def test_membership_churn_replays_pre_refactor_golden():
    """The shared-helper refactor must not move a single draw: this golden
    was captured from the pre-refactor ``membership_churn`` output."""
    plan = FaultPlan().membership_churn(
        ["A", "B", "C", "D"], start=5.0, end=60.0, seed=7
    )
    assert plan.to_dicts() == GOLDEN_CHURN_SEED7


def test_churn_events_is_the_plan_event_stream():
    events = churn_events(["A", "B", "C", "D"], 5.0, 60.0, seed=7)
    mapped = sorted(
        ({"time": round(t, 6),
          "kind": "receiver_leave" if kind == "leave" else "receiver_join",
          "args": [rid], "kwargs": {}}
         for kind, t, rid in events),
        key=lambda d: (d["time"], d["kind"]),
    )
    assert mapped == GOLDEN_CHURN_SEED7


def test_churn_events_error_paths():
    with pytest.raises(ValueError):
        churn_events([], 0.0, 10.0)
    with pytest.raises(ValueError):
        churn_events(["a"], 10.0, 5.0)
    with pytest.raises(ValueError):
        churn_events(["a"], 0.0, 10.0, rate=0.0)
    with pytest.raises(ValueError):
        churn_events(["a"], 0.0, 10.0, burst=0)
    with pytest.raises(ValueError):
        churn_events(["a"], 0.0, 10.0, off_time=(5.0, 2.0))


# ----------------------------------------------------------------------
# WirelessEdgeLink
# ----------------------------------------------------------------------
def test_wireless_link_validation():
    sc = Scenario(seed=1)
    sc.add_node("a")
    sc.add_node("b")
    sched = sc.sched
    a, b = sc.network.node("a"), sc.network.node("b")
    with pytest.raises(ValueError):
        WirelessEdgeLink(sched, a, b, 1e6, 0.1, loss_rate=1.0,
                         rng=sc.rngs.fork("w"))
    with pytest.raises(ValueError):
        WirelessEdgeLink(sched, a, b, 1e6, 0.1, loss_rate=-0.1,
                         rng=sc.rngs.fork("w2"))
    with pytest.raises(ValueError, match="seeded rng"):
        WirelessEdgeLink(sched, a, b, 1e6, 0.1, loss_rate=0.5)
    # Lossless needs no rng at all.
    WirelessEdgeLink(sched, a, b, 1e6, 0.1)


def _wireless_scenario(loss, seed=3):
    sc = Scenario(seed=seed)
    for n in ("src", "edge"):
        sc.add_node(n)

    def factory(sched, a, b, bw, delay, queue):
        return WirelessEdgeLink(
            sched, a, b, bw, delay, queue, loss_rate=loss,
            fade_in=loss * 0.25,
            rng=sc.rngs.fork(f"chan/{a.name}->{b.name}"),
        )

    sc.add_link("src", "edge", bandwidth=500_000.0, link_factory=factory)
    sess = sc.add_session("src")
    sc.add_receiver(sess.session_id, "edge", receiver_id="R",
                    initial_level=2, mode="static")
    return sc


def test_wireless_drops_are_separate_from_queue_drops():
    sc = _wireless_scenario(0.3)
    bus = EventBus()
    reasons = []
    bus.subscribe("link.drop", lambda ev: reasons.append(ev.data["reason"]))
    sc.sched.bus = bus
    sc.run(30.0)
    wireless = sum(
        getattr(link, "wireless_drops", 0)
        for link in sc.network.links.values()
    )
    assert wireless > 0
    assert DROP_WIRELESS in reasons
    assert set(reasons) <= set(DROP_REASONS)
    # Channel losses must not be charged to the queues.
    assert sum(link.queue.stats.dropped
               for link in sc.network.links.values()) == 0


def test_wireless_loss_is_deterministic_per_seed():
    def run(seed):
        sc = _wireless_scenario(0.25, seed=seed)
        sc.run(20.0)
        return sorted(
            (str(k), getattr(link, "wireless_drops", 0))
            for k, link in sc.network.links.items()
        )

    assert run(5) == run(5)
    assert run(5) != run(6)


# ----------------------------------------------------------------------
# WorkloadRunner on a scenario
# ----------------------------------------------------------------------
def _runner_scenario(size=10, seed=2, mode="controlled"):
    sc = Scenario(seed=seed)
    for n in ("src", "e0", "e1"):
        sc.add_node(n)
    sc.add_link("src", "e0", bandwidth=500_000.0)
    sc.add_link("src", "e1", bandwidth=500_000.0)
    sess = sc.add_session("src")
    sc.attach_controller("src")
    spec = WorkloadSpec()
    spec.zipf_sessions([f"c{i}" for i in range(size)], ["e0", "e1"],
                       [sess.session_id], seed=seed, mode=mode)
    spec.flash_crowd(at=4.0, size=size, ramp=2.0, seed=seed + 1)
    return sc, spec


def test_runner_parks_population_until_joined():
    sc, spec = _runner_scenario()
    runner = WorkloadRunner(sc, spec, sample_interval=2.0).install()
    with pytest.raises(RuntimeError):
        runner.install()
    sc.run(2.0)  # before the flash crowd
    assert runner.n_live == 0
    assert all(h.receiver.level == 0 for h in sc.receivers
               if str(h.receiver_id).startswith("c"))
    sc.run(28.0)
    assert runner.peak_live == len(spec.population)
    assert runner.joins_fired == len(spec.population)
    assert runner.join_latency_ms, "join-to-first-packet probe never fired"
    assert len(runner.samples) > 3


def test_runner_emits_workload_topics():
    sc, spec = _runner_scenario(size=6)
    WorkloadRunner(sc, spec, sample_interval=2.0).install()
    bus = EventBus()
    topics = []
    bus.subscribe("workload.*", lambda ev: topics.append(ev.topic))
    sc.sched.bus = bus
    sc.run(20.0)
    assert "workload.join" in topics
    assert "workload.sample" in topics


def test_parked_receiver_requires_level_zero():
    sc, _spec = _runner_scenario()
    with pytest.raises(ValueError, match="initial_level=0"):
        sc.add_receiver(0, "e0", receiver_id="bad", initial_level=1,
                        parked=True)


def test_flash_crowd_10k_joins_deterministically():
    """The acceptance-scale point: >= 10^4 joins, replayed bit-identically
    across two fresh builds of the same seed and spec."""
    def run_once():
        sc = Scenario(seed=9)
        sc.add_node("src")
        edges = [f"e{i}" for i in range(16)]
        for e in edges:
            sc.add_node(e)
            sc.add_link("src", e, bandwidth=500_000.0)
        sess = sc.add_session("src")
        spec = WorkloadSpec()
        spec.zipf_sessions([f"c{i}" for i in range(10_000)], edges,
                           [sess.session_id], seed=1, mode="static")
        spec.flash_crowd(at=2.0, size=10_000, ramp=3.0, shape="exp", seed=2)
        runner = WorkloadRunner(sc, spec, sample_interval=2.0).install()
        sc.run(10.0)
        return runner.summary()

    one = run_once()
    assert one["joins_fired"] == 10_000
    assert one["peak_live"] == 10_000
    assert one == run_once()


def test_multicast_refcount_survives_co_located_crowd():
    """Two receivers sharing a node and group: the first leave must not
    tear down the branch the second still needs."""
    sc, spec = _runner_scenario(size=2, mode="static")
    # Co-locate both receivers on one node so they share tree branches.
    spec.population = [
        ReceiverSpec(rs.receiver_id, "e0", rs.session_id, rs.mode)
        for rs in spec.population
    ]
    spec.leave(10.0, spec.population[0].receiver_id)
    runner = WorkloadRunner(sc, spec, sample_interval=2.0).install()
    sc.run(12.0)  # the leave at t=10 has fired
    survivor = sc.receiver_handle(spec.population[1].receiver_id)
    assert runner.leaves_fired == 1
    assert survivor.receiver.level > 0
    mid = sum(lr.received for lr in survivor.receiver.layers)
    assert mid > 0
    sc.run(8.0)
    # Packets kept flowing to the survivor after the co-tenant left.
    assert sum(lr.received for lr in survivor.receiver.layers) > mid
