"""Unit tests for the layer schedule."""

import pytest

from repro.media.layers import PAPER_SCHEDULE, LayerSchedule


def test_paper_schedule_rates():
    # 32, 64, 128, 256, 512, 1024 Kb/s
    assert PAPER_SCHEDULE.n_layers == 6
    assert [PAPER_SCHEDULE.rate(i) for i in range(1, 7)] == [
        32_000,
        64_000,
        128_000,
        256_000,
        512_000,
        1_024_000,
    ]


def test_cumulative_rates():
    assert PAPER_SCHEDULE.cumulative(0) == 0.0
    assert PAPER_SCHEDULE.cumulative(1) == 32_000
    assert PAPER_SCHEDULE.cumulative(4) == 480_000  # paper: 4 layers ~ 500 Kb/s
    assert PAPER_SCHEDULE.cumulative(6) == 2_016_000


def test_max_level_for_bandwidth():
    s = PAPER_SCHEDULE
    assert s.max_level_for(0) == 0
    assert s.max_level_for(31_999) == 0
    assert s.max_level_for(32_000) == 1
    assert s.max_level_for(500_000) == 4  # the paper's Topology B optimum
    assert s.max_level_for(10e6) == 6


def test_layer_index_validation():
    with pytest.raises(ValueError):
        PAPER_SCHEDULE.rate(0)
    with pytest.raises(ValueError):
        PAPER_SCHEDULE.rate(7)
    with pytest.raises(ValueError):
        PAPER_SCHEDULE.cumulative(7)


def test_custom_geometric_schedule():
    s = LayerSchedule(n_layers=3, base_rate=10_000, growth=3.0)
    assert s.rates == (10_000, 30_000, 90_000)


def test_explicit_rates():
    s = LayerSchedule(rates=[10_000, 20_000, 15_000])
    assert s.n_layers == 3
    assert s.cumulative(3) == 45_000


def test_invalid_parameters():
    with pytest.raises(ValueError):
        LayerSchedule(n_layers=0)
    with pytest.raises(ValueError):
        LayerSchedule(base_rate=0)
    with pytest.raises(ValueError):
        LayerSchedule(growth=-1)
    with pytest.raises(ValueError):
        LayerSchedule(rates=[])
    with pytest.raises(ValueError):
        LayerSchedule(rates=[1000, -5])


def test_equality_and_hash():
    a = LayerSchedule(n_layers=3, base_rate=1000)
    b = LayerSchedule(rates=[1000, 2000, 4000])
    assert a == b
    assert hash(a) == hash(b)
    assert a != LayerSchedule(n_layers=4, base_rate=1000)
    assert a != "not a schedule"
