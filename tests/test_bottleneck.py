"""Unit tests for stage 3: bottleneck bandwidths."""

import math


from repro.core.bottleneck import compute_bottlenecks, compute_handleable
from repro.core.session_topology import SessionTree


def tree():
    return SessionTree("s", 1, [(1, 2), (2, 3), (2, 4), (1, 5), (5, 6)],
                       {3: "r3", 4: "r4", 6: "r6"})


def caps(mapping):
    return lambda e: mapping.get(e, math.inf)


def test_bottleneck_is_min_along_path():
    c = caps({(1, 2): 1e6, (2, 3): 128e3, (2, 4): 512e3})
    b = compute_bottlenecks(tree(), c)
    assert b[1] == math.inf
    assert b[2] == 1e6
    assert b[3] == 128e3
    assert b[4] == 512e3
    assert b[6] == math.inf  # no estimates on that branch


def test_upstream_constraint_dominates():
    c = caps({(1, 2): 100e3, (2, 3): 500e3})
    b = compute_bottlenecks(tree(), c)
    assert b[3] == 100e3


def test_all_infinite():
    b = compute_bottlenecks(tree(), caps({}))
    assert all(v == math.inf for v in b.values())


def test_handleable_is_max_over_subtree():
    c = caps({(1, 2): 1e6, (2, 3): 128e3, (2, 4): 512e3, (1, 5): 64e3})
    b = compute_bottlenecks(tree(), c)
    h = compute_handleable(tree(), b)
    assert h[3] == 128e3
    assert h[4] == 512e3
    assert h[2] == 512e3  # best receiver below node 2
    assert h[5] == 64e3
    assert h[1] == max(512e3, 64e3)


def test_handleable_leaf_equals_own_bottleneck():
    c = caps({(1, 2): 300e3})
    t = SessionTree("s", 1, [(1, 2)], {2: "r"})
    b = compute_bottlenecks(t, c)
    h = compute_handleable(t, b)
    assert h[2] == b[2] == 300e3


def test_single_node_tree():
    t = SessionTree("s", 1, [], {1: "r"})
    b = compute_bottlenecks(t, caps({}))
    h = compute_handleable(t, b)
    assert b[1] == math.inf and h[1] == math.inf
