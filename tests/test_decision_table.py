"""Exhaustive unit tests for Table I (the demand decision table)."""

import pytest

from repro.core.decision_table import (
    Action,
    BwEquality,
    classify_bandwidth,
    encode_history,
    internal_action,
    leaf_action,
)

L, E, G = BwEquality.LESSER, BwEquality.EQUAL, BwEquality.GREATER


class TestEncodeHistory:
    def test_bit_positions(self):
        # T0 -> bit 2, T1 -> bit 1, T2 (current) -> bit 0.
        assert encode_history(False, False, False) == 0
        assert encode_history(False, False, True) == 1
        assert encode_history(False, True, False) == 2
        assert encode_history(False, True, True) == 3
        assert encode_history(True, False, False) == 4
        assert encode_history(True, False, True) == 5
        assert encode_history(True, True, False) == 6
        assert encode_history(True, True, True) == 7


class TestClassifyBandwidth:
    def test_lesser_means_throughput_rising(self):
        assert classify_bandwidth(100.0, 200.0, 0.05) is L

    def test_greater_means_throughput_falling(self):
        assert classify_bandwidth(200.0, 100.0, 0.05) is G

    def test_equal_within_tolerance(self):
        assert classify_bandwidth(100.0, 104.0, 0.05) is E
        assert classify_bandwidth(104.0, 100.0, 0.05) is E

    def test_just_outside_tolerance(self):
        assert classify_bandwidth(100.0, 106.0, 0.05) is L

    def test_both_zero_is_equal(self):
        assert classify_bandwidth(0.0, 0.0, 0.05) is E

    def test_zero_to_positive_is_lesser(self):
        assert classify_bandwidth(0.0, 50.0, 0.05) is L


class TestLeafTable:
    """Each paper Table I leaf row, verbatim."""

    # -- Lesser column ---------------------------------------------------
    def test_lesser_0_add(self):
        assert leaf_action(0, L) is Action.ADD_LAYER

    def test_lesser_1_drop_if_high_loss(self):
        assert leaf_action(1, L) is Action.DROP_IF_HIGH_LOSS

    @pytest.mark.parametrize("h", [2, 4, 5, 6])
    def test_lesser_2456_maintain(self, h):
        assert leaf_action(h, L) is Action.MAINTAIN

    def test_lesser_3_reduce_to_supply(self):
        assert leaf_action(3, L) is Action.REDUCE_TO_SUPPLY_OLD

    def test_lesser_7_reduce_half_backoff(self):
        assert leaf_action(7, L) is Action.REDUCE_HALF_OLD

    # -- Equal column ------------------------------------------------------
    @pytest.mark.parametrize("h", [0, 4])
    def test_equal_04_add(self, h):
        assert leaf_action(h, E) is Action.ADD_LAYER

    @pytest.mark.parametrize("h", [1, 2, 5, 6])
    def test_equal_1256_maintain(self, h):
        assert leaf_action(h, E) is Action.MAINTAIN

    @pytest.mark.parametrize("h", [3, 7])
    def test_equal_37_reduce_half_backoff(self, h):
        assert leaf_action(h, E) is Action.REDUCE_HALF_OLD

    # -- Greater column ------------------------------------------------------
    def test_greater_0_add(self):
        assert leaf_action(0, G) is Action.ADD_LAYER

    @pytest.mark.parametrize("h", [1, 2, 4, 5, 6])
    def test_greater_12456_maintain(self, h):
        assert leaf_action(h, G) is Action.MAINTAIN

    @pytest.mark.parametrize("h", [3, 7])
    def test_greater_37_reduce_if_very_high(self, h):
        assert leaf_action(h, G) is Action.REDUCE_HALF_IF_VERY_HIGH

    def test_table_is_total(self):
        for h in range(8):
            for eq in (L, E, G):
                assert isinstance(leaf_action(h, eq), Action)

    @pytest.mark.parametrize("h", [-1, 8])
    def test_invalid_history(self, h):
        with pytest.raises(ValueError):
            leaf_action(h, L)


class TestInternalTable:
    @pytest.mark.parametrize("h", [0, 4])
    @pytest.mark.parametrize("eq", [L, E, G])
    def test_04_accept_all_cases(self, h, eq):
        assert internal_action(h, eq) is Action.ACCEPT_CHILDREN

    @pytest.mark.parametrize("h", [1, 5, 7])
    def test_157_greater_reduce_half_recent(self, h):
        assert internal_action(h, G) is Action.REDUCE_HALF_RECENT

    @pytest.mark.parametrize("h", [1, 5, 7])
    @pytest.mark.parametrize("eq", [L, E])
    def test_157_equal_lesser_reduce_half_old(self, h, eq):
        assert internal_action(h, eq) is Action.REDUCE_HALF_OLD

    @pytest.mark.parametrize("h", [2, 3, 6])
    @pytest.mark.parametrize("eq", [L, E, G])
    def test_236_maintain_all_cases(self, h, eq):
        assert internal_action(h, eq) is Action.MAINTAIN

    def test_table_is_total(self):
        for h in range(8):
            for eq in (L, E, G):
                assert isinstance(internal_action(h, eq), Action)

    @pytest.mark.parametrize("h", [-2, 9])
    def test_invalid_history(self, h):
        with pytest.raises(ValueError):
            internal_action(h, E)
