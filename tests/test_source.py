"""Unit tests for layered CBR/VBR sources."""

import numpy as np
import pytest

from repro.media.layers import LayerSchedule
from repro.media.source import CBR, VBR, LayeredSource
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def two_node_setup(n_layers=2, bandwidth=10e6):
    sched = Scheduler()
    net = Network(sched)
    net.add_node("src")
    net.add_node("dst")
    net.add_link("src", "dst", bandwidth=bandwidth, delay=0.01, queue_limit=10_000)
    net.build_routes()
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = list(range(1, n_layers + 1))
    # Static forwarding: everything flows to dst.
    for g in groups:
        net.node("src").mcast_fwd[g] = {"dst"}
    return sched, net, schedule, groups


def collect(net, groups):
    got = {g: [] for g in groups}
    for g in groups:
        net.node("dst").add_group_handler(g, got[g].append)
    return got


def test_cbr_rate_matches_schedule():
    sched, net, schedule, groups = two_node_setup(n_layers=2)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start()
    sched.run(until=10.0)
    # 32 Kb/s of 1000 B packets = 4 pkt/s; layer 2 = 8 pkt/s; 10 full slots.
    assert len(got[1]) == 40
    assert len(got[2]) == 80


def test_cbr_packets_evenly_spaced():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start()
    sched.run(until=3.5)
    times = [p.created_at for p in got[1]]
    gaps = np.diff(times)
    assert gaps == pytest.approx([0.25] * (len(times) - 1))


def test_sequence_numbers_contiguous_per_layer():
    sched, net, schedule, groups = two_node_setup(n_layers=2)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start()
    sched.run(until=5.5)
    for g in groups:
        seqs = [p.seq for p in got[g]]
        assert seqs == list(range(len(seqs)))


def test_packet_metadata():
    sched, net, schedule, groups = two_node_setup(n_layers=2)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 42, groups, schedule, model=CBR)
    src.start()
    sched.run(until=1.5)
    p = got[1][0]
    assert p.session == 42
    assert p.layer == 1
    assert p.size == 1000
    assert got[2][0].layer == 2


def test_vbr_mean_rate_approximates_schedule():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    rng = np.random.default_rng(1234)
    src = LayeredSource(
        net.node("src"), 1, groups, schedule, model=VBR, peak_to_mean=3, rng=rng
    )
    src.start()
    horizon = 400
    sched.run(until=horizon + 0.5)
    mean_pps = len(got[1]) / horizon
    assert mean_pps == pytest.approx(4.0, rel=0.25)


def test_vbr_is_bursty():
    """Some slots carry the burst size P*A + 1 - P, others exactly 1 packet."""
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    rng = np.random.default_rng(7)
    src = LayeredSource(
        net.node("src"), 1, groups, schedule, model=VBR, peak_to_mean=3, rng=rng
    )
    src.start()
    sched.run(until=100.5)
    per_slot = {}
    for p in got[1]:
        per_slot.setdefault(int(p.created_at), 0)
        per_slot[int(p.created_at)] += 1
    counts = set(per_slot.values())
    # A=4, P=3: burst slots carry P*A+1-P = 10 packets, quiet slots 1.
    assert 1 in counts
    assert 10 in counts


def test_vbr_draw_distribution():
    schedule = LayerSchedule(n_layers=1, base_rate=32_000)
    sched = Scheduler()
    net = Network(sched)
    node = net.add_node("src")
    rng = np.random.default_rng(0)
    src = LayeredSource(node, 1, [1], schedule, model=VBR, peak_to_mean=6, rng=rng)
    draws = [src._draw_packets(4.0) for _ in range(6000)]
    # P=6: burst value 6*4+1-6 = 19 w.p. 1/6, else 1.
    assert set(draws) == {1, 19}
    frac_burst = draws.count(19) / len(draws)
    assert frac_burst == pytest.approx(1 / 6, abs=0.03)


def test_vbr_requires_rng():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    with pytest.raises(ValueError):
        LayeredSource(net.node("src"), 1, groups, schedule, model=VBR)


def test_invalid_model():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    with pytest.raises(ValueError):
        LayeredSource(net.node("src"), 1, groups, schedule, model="abr")


def test_peak_to_mean_must_exceed_one():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    with pytest.raises(ValueError):
        LayeredSource(
            net.node("src"), 1, groups, schedule, model=VBR,
            peak_to_mean=1.0, rng=np.random.default_rng(0),
        )


def test_group_count_must_match_layers():
    sched, net, schedule, groups = two_node_setup(n_layers=2)
    with pytest.raises(ValueError):
        LayeredSource(net.node("src"), 1, [1], schedule, model=CBR)


def test_stop_halts_emission():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start()
    sched.run(until=2.5)
    src.stop()
    assert not src.running
    sched.run(until=3.0)  # drain packets already on the wire
    count = len(got[1])
    sched.run(until=10.0)
    assert len(got[1]) == count


def test_start_twice_is_noop():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start()
    src.start()
    sched.run(until=2.0)
    assert len(got[1]) == 8  # not doubled


def test_delayed_start():
    sched, net, schedule, groups = two_node_setup(n_layers=1)
    got = collect(net, groups)
    src = LayeredSource(net.node("src"), 1, groups, schedule, model=CBR)
    src.start(at=5.0)
    sched.run(until=4.9)
    assert len(got[1]) == 0
    sched.run(until=7.5)
    assert len(got[1]) > 0
