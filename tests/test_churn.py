"""Tests for membership churn plans, receiver re-attachment and the
tree-churn backend sweep (``python -m repro churn``)."""

import json
import math

import pytest

from repro.experiments.churn import (
    build_churn_scenario,
    churn_receiver_ids,
    default_churn_plan,
    run_churn,
)
from repro.faults import FaultInjector, FaultPlan


# ----------------------------------------------------------------------
# membership_churn plan builder
# ----------------------------------------------------------------------
def test_membership_churn_is_deterministic_per_seed():
    ids = ["A", "B", "C", "D"]
    one = FaultPlan().membership_churn(ids, start=5.0, end=60.0, seed=7)
    two = FaultPlan().membership_churn(ids, start=5.0, end=60.0, seed=7)
    other = FaultPlan().membership_churn(ids, start=5.0, end=60.0, seed=8)
    assert list(one) == list(two)
    assert list(one) != list(other)


def test_membership_churn_events_are_well_formed():
    ids = ["A", "B", "C", "D"]
    plan = FaultPlan().membership_churn(
        ids, start=10.0, end=50.0, rate=0.5, off_time=(4.0, 12.0), seed=3
    )
    events = list(plan)
    assert events, "a 40 s window at rate 0.5 should produce churn"
    assert all(ev.kind in ("receiver_leave", "receiver_join") for ev in events)
    # Every rejoin pairs with an earlier leave of the same receiver at an
    # off-time inside the configured bounds.  (Waves can overlap: a receiver
    # may be picked to leave again while still departed — the injector is
    # idempotent about that — and a leave near the window end legitimately
    # has no rejoin at all.)
    leaves = {}
    n_joins = 0
    for ev in events:
        rid = ev.args[0]
        assert rid in ids
        if ev.kind == "receiver_leave":
            assert 10.0 <= ev.time <= 50.0
            leaves.setdefault(rid, []).append(ev.time)
        else:
            n_joins += 1
            assert ev.time < 50.0, "rejoins past the window are dropped"
            assert any(
                4.0 <= ev.time - t0 <= 12.0 for t0 in leaves.get(rid, ())
            ), "join without a matching leave"
    assert n_joins > 0


def test_membership_churn_round_trips_through_json():
    plan = FaultPlan().membership_churn(["A", "B", "C"], start=1.0, end=30.0, seed=5)
    plan.link_flap(10.0, "x", "y", down_for=2.0, times=1)
    replayed = FaultPlan.from_dicts(json.loads(json.dumps(plan.to_dicts())))
    assert list(replayed) == list(plan)


# ----------------------------------------------------------------------
# Receiver leave/rejoin through the injector
# ----------------------------------------------------------------------
def test_membership_fault_leave_and_rejoin_are_idempotent():
    sc = build_churn_scenario(seed=2, n_receivers=4)
    injector = FaultInjector(sc)
    handle = next(h for h in sc.receivers if h.receiver_id == "A0")

    sc.run(10.0)
    first_agent = handle.agent
    assert first_agent.active
    assert handle.receiver.level >= 1

    injector.membership.leave("A0")
    injector.membership.leave("A0")  # no-op, not an error
    sc.run(20.0)
    assert not first_agent.active
    assert handle.receiver.level == 0

    injector.membership.join("A0")
    injector.membership.join("A0")  # no-op, not an error
    rejoined = handle.agent
    assert rejoined is not first_agent  # fresh agent, fresh RNG stream
    assert rejoined.active
    sc.run(40.0)
    assert handle.receiver.level >= 1
    # The replacement agent keeps reporting: the controller still reaches it.
    assert any(t > 20.0 for t in rejoined.suggestion_times)


def test_reattach_unknown_receiver_raises():
    sc = build_churn_scenario(seed=2, n_receivers=2)
    injector = FaultInjector(sc)
    with pytest.raises(KeyError):
        injector.membership.leave("nope")


# ----------------------------------------------------------------------
# The backend sweep
# ----------------------------------------------------------------------
def test_churn_receiver_ids_split_across_aggregations():
    assert churn_receiver_ids(5) == ["A0", "A1", "A2", "B0", "B1"]
    assert churn_receiver_ids(1) == ["A0"]


def test_default_plan_covers_both_aggregation_links():
    plan = default_churn_plan(churn_receiver_ids(6), duration=120.0, seed=1)
    downs = [tuple(ev.args) for ev in plan if ev.kind == "link_down"]
    assert ("core", "agg_a") in downs
    assert ("core", "agg_b") in downs
    assert any(ev.kind == "receiver_leave" for ev in plan)


def test_run_churn_rejects_unknown_backend():
    with pytest.raises(ValueError):
        run_churn(backends=["spt", "bogus"])


def test_run_churn_smoke_all_backends():
    """One full seeded sweep: the ISSUE's churn acceptance gate."""
    result = run_churn(seed=1)
    assert result["backends"] == ["spt", "degree", "protected"]
    assert result["ok"], "canonical churn sweep must pass its own gate"

    spt = result["per_backend"]["spt"]
    prot = result["per_backend"]["protected"]
    # Identical (seed, plan) per backend: same fault log, same churn input.
    assert spt["fault_log"] == prot["fault_log"]
    assert result["plan"] == FaultPlan.from_dicts(result["plan"]).to_dicts()

    # SPT never patches locally; protected must have, and strictly cheaper
    # than SPT's full rebuilds on the same scenario.
    assert spt["local_repairs"] == 0
    assert prot["local_repairs"] >= 1
    assert prot["rebuild_repairs"] < spt["rebuild_repairs"]
    assert (
        prot["repair_ms"]["local"]["mean_ms"]
        < spt["repair_ms"]["rebuild"]["mean_ms"]
    )

    for backend in result["backends"]:
        b = result["per_backend"][backend]
        # The incremental path skipped the sibling session's groups.
        assert b["groups_skipped"] > 0
        assert b["repair_epoch"] > 0
        assert b["recovered_all"]
        # The access-link cut orphans one receiver for its 6 s outage.
        assert b["orphan_member_seconds"] > 0
        # Its post-restore loss report spans the window and is fenced.
        assert b["reports_fenced"] >= 1
        # Nobody lies under pure churn; the guard must stay silent.
        assert b["guard"]["precision"] == 1.0 and b["guard"]["recall"] == 1.0
        assert math.isfinite(b["convergence_s"])
