"""Unit tests for StepTrace and SeriesTrace."""

import pytest

from repro.simnet.tracing import SeriesTrace, StepTrace


class TestStepTrace:
    def test_initial_value(self):
        t = StepTrace(t0=0.0, v0=2)
        assert t.value_at(0.0) == 2
        assert t.value_at(100.0) == 2

    def test_record_and_lookup(self):
        t = StepTrace(0.0, 1)
        t.record(10.0, 2)
        t.record(20.0, 3)
        assert t.value_at(5.0) == 1
        assert t.value_at(10.0) == 2
        assert t.value_at(15.0) == 2
        assert t.value_at(25.0) == 3

    def test_duplicate_value_not_stored(self):
        t = StepTrace(0.0, 1)
        t.record(5.0, 1)
        assert len(t) == 1

    def test_same_instant_overwrite(self):
        t = StepTrace(0.0, 1)
        t.record(5.0, 2)
        t.record(5.0, 3)
        assert t.value_at(5.0) == 3
        assert len(t) == 2

    def test_same_instant_overwrite_collapses_to_previous(self):
        t = StepTrace(0.0, 1)
        t.record(5.0, 2)
        t.record(5.0, 1)  # back to original value -> change disappears
        assert len(t) == 1
        assert t.value_at(10.0) == 1

    def test_same_instant_overwrite_chain_keeps_final_value(self):
        # Regression: a burst of same-instant overwrites (e.g. several
        # add_layer calls in one control action) must leave exactly one
        # point carrying the last value, never adjacent duplicates.
        t = StepTrace(0.0, 1)
        for v in (2, 3, 4, 2):
            t.record(5.0, v)
        assert len(t) == 2
        assert t.value_at(5.0) == 2
        assert t.values == [1, 2]

    def test_same_instant_collapse_then_new_change(self):
        t = StepTrace(0.0, 1)
        t.record(5.0, 3)
        t.record(5.0, 1)  # collapsed away
        t.record(7.0, 2)  # recording must continue cleanly after collapse
        assert t.times == [0.0, 7.0]
        assert t.values == [1, 2]
        assert t.num_changes() == 1

    def test_no_adjacent_duplicate_values_ever(self):
        t = StepTrace(0.0, 0)
        for step, (at, v) in enumerate(
            [(1.0, 1), (1.0, 0), (2.0, 2), (2.0, 2), (3.0, 2), (4.0, 3)]
        ):
            t.record(at, v)
            pairs = list(zip(t.values, t.values[1:]))
            assert all(a != b for a, b in pairs), (step, t.values)

    def test_non_monotonic_rejected(self):
        t = StepTrace(0.0, 1)
        t.record(5.0, 2)
        with pytest.raises(ValueError):
            t.record(4.0, 3)

    def test_lookup_before_start_rejected(self):
        t = StepTrace(1.0, 0)
        with pytest.raises(ValueError):
            t.value_at(0.5)

    def test_num_changes_window(self):
        t = StepTrace(0.0, 0)
        for i, time in enumerate([10.0, 20.0, 30.0], start=1):
            t.record(time, i)
        assert t.num_changes() == 3
        assert t.num_changes(15.0, 25.0) == 1
        assert t.num_changes(0.0, 9.0) == 0

    def test_mean_time_between_changes(self):
        t = StepTrace(0.0, 0)
        t.record(10.0, 1)
        t.record(30.0, 2)
        t.record(40.0, 3)
        # gaps: 20, 10 -> mean 15
        assert t.mean_time_between_changes(0.0, 100.0) == pytest.approx(15.0)

    def test_mean_time_between_changes_stable_signal(self):
        t = StepTrace(0.0, 4)
        assert t.mean_time_between_changes(0.0, 1200.0) == pytest.approx(1200.0)

    def test_time_weighted_mean(self):
        t = StepTrace(0.0, 0)
        t.record(5.0, 10)
        # [0,5) at 0, [5,10) at 10 -> mean 5
        assert t.time_weighted_mean(0.0, 10.0) == pytest.approx(5.0)

    def test_time_weighted_mean_partial_window(self):
        t = StepTrace(0.0, 2)
        t.record(10.0, 4)
        assert t.time_weighted_mean(5.0, 15.0) == pytest.approx(3.0)

    def test_time_weighted_mean_invalid_window(self):
        t = StepTrace(0.0, 1)
        with pytest.raises(ValueError):
            t.time_weighted_mean(5.0, 5.0)

    def test_segments_cover_window(self):
        t = StepTrace(0.0, 1)
        t.record(10.0, 2)
        t.record(20.0, 3)
        segs = list(t.segments(5.0, 25.0))
        assert segs == [(5.0, 10.0, 1), (10.0, 20.0, 2), (20.0, 25.0, 3)]
        total = sum(b - a for a, b, _ in segs)
        assert total == pytest.approx(20.0)

    def test_segments_window_inside_one_piece(self):
        t = StepTrace(0.0, 7)
        segs = list(t.segments(3.0, 4.0))
        assert segs == [(3.0, 4.0, 7)]


class TestSeriesTrace:
    def test_record_and_window(self):
        s = SeriesTrace()
        for i in range(5):
            s.record(float(i), i * 0.1)
        t, v = s.window(1.0, 3.0)
        assert list(t) == [1.0, 2.0, 3.0]
        assert v == pytest.approx([0.1, 0.2, 0.3])

    def test_mean(self):
        s = SeriesTrace()
        s.record(0.0, 1.0)
        s.record(1.0, 3.0)
        assert s.mean() == pytest.approx(2.0)
        assert s.mean(0.5, 2.0) == pytest.approx(3.0)

    def test_mean_empty_is_nan(self):
        import math

        assert math.isnan(SeriesTrace().mean())

    def test_non_monotonic_rejected(self):
        s = SeriesTrace()
        s.record(5.0, 1.0)
        with pytest.raises(ValueError):
            s.record(4.0, 1.0)

    def test_len(self):
        s = SeriesTrace()
        assert len(s) == 0
        s.record(0.0, 0.0)
        assert len(s) == 1
