"""Integration tests for the Scenario facade and the paper topologies."""

import pytest

from repro.baselines.static import StaticController
from repro.experiments.scenario import Scenario
from repro.experiments.topologies import build_topology_a, build_topology_b


def small_scenario(**kw):
    sc = Scenario(seed=1, **kw)
    sc.add_node("s")
    sc.add_node("m")
    sc.add_node("r")
    sc.add_link("s", "m", bandwidth=10e6, delay=0.05)
    sc.add_link("m", "r", bandwidth=10e6, delay=0.05)
    return sc


class TestScenario:
    def test_session_and_receiver_lifecycle(self):
        sc = small_scenario()
        sess = sc.add_session("s", traffic="cbr")
        sc.attach_controller("s")
        h = sc.add_receiver(sess.session_id, "r")
        res = sc.run(30.0)
        assert h.receiver.total_bytes > 0
        assert h.receiver.level >= 1
        assert res.end_time == 30.0

    def test_run_can_be_resumed(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        sc.attach_controller("s")
        sc.add_receiver(sess.session_id, "r")
        sc.run(10.0)
        res = sc.run(10.0)
        assert res.end_time == 20.0

    def test_controlled_receiver_requires_controller(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        sc.add_receiver(sess.session_id, "r", mode="controlled")
        with pytest.raises(ValueError, match="attach_controller"):
            sc.run(5.0)

    def test_static_receiver_stays_put(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        h = sc.add_receiver(sess.session_id, "r", mode="static", initial_level=2)
        sc.run(30.0)
        assert h.receiver.level == 2
        assert h.trace.num_changes(1.0, 30.0) == 0

    def test_unknown_mode_rejected(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        with pytest.raises(ValueError):
            sc.add_receiver(sess.session_id, "r", mode="bogus")

    def test_duplicate_controller_rejected(self):
        sc = small_scenario()
        sc.add_session("s")
        sc.attach_controller("s")
        with pytest.raises(ValueError):
            sc.attach_controller("s")

    def test_duplicate_session_id_rejected(self):
        sc = small_scenario()
        sc.add_session("s", session_id="X")
        with pytest.raises(ValueError):
            sc.add_session("s", session_id="X")

    def test_invalid_duration(self):
        sc = small_scenario()
        with pytest.raises(ValueError):
            sc.run(0.0)

    def test_custom_algorithm_used(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        sc.attach_controller("s", algorithm=StaticController(level=3))
        h = sc.add_receiver(sess.session_id, "r")
        sc.run(30.0)
        assert h.receiver.level == 3

    def test_result_accessors(self):
        sc = small_scenario()
        sess = sc.add_session("s")
        sc.attach_controller("s")
        h = sc.add_receiver(sess.session_id, "r")
        res = sc.run(20.0)
        assert res.trace(h.receiver_id) is h.trace
        with pytest.raises(KeyError):
            res.trace("ghost")
        opt = res.optimal_levels()
        assert opt[(sess.session_id, h.receiver_id)] == 6  # fat links
        assert res.mean_deviation(5.0) >= 0.0
        assert res.deviation_of(h.receiver_id, 5.0) >= 0.0
        with pytest.raises(KeyError):
            res.deviation_of("ghost")
        count, gap = res.stability()
        assert count >= 0 and gap > 0
        assert "session" in res.summary()

    def test_deterministic_given_seed(self):
        def run_once():
            sc = small_scenario()
            sess = sc.add_session("s", traffic="vbr", peak_to_mean=3)
            sc.attach_controller("s")
            h = sc.add_receiver(sess.session_id, "r")
            sc.run(40.0)
            return list(zip(h.trace.times, h.trace.values)), h.receiver.total_bytes

        assert run_once() == run_once()


class TestPaperTopologies:
    def test_topology_a_structure(self):
        sc = build_topology_a(n_receivers=4, seed=0)
        assert len(sc.receivers) == 4
        ids = [h.receiver_id for h in sc.receivers]
        assert ids == ["A0", "A1", "B0", "B1"]
        res = sc.run(10.0)
        opt = res.optimal_levels()
        sid = sc.receivers[0].session_id
        assert opt[(sid, "A0")] == 4
        assert opt[(sid, "B0")] == 2

    def test_topology_a_odd_split(self):
        sc = build_topology_a(n_receivers=3, seed=0)
        ids = [h.receiver_id for h in sc.receivers]
        assert ids == ["A0", "A1", "B0"]

    def test_topology_a_validation(self):
        with pytest.raises(ValueError):
            build_topology_a(n_receivers=0)

    def test_topology_b_structure(self):
        sc = build_topology_b(n_sessions=3, seed=0)
        assert len(sc.sessions) == 3
        assert len(sc.receivers) == 3
        # Shared link capacity scales with session count.
        assert sc.network.link("x", "y").bandwidth == pytest.approx(3 * 500e3)
        res = sc.run(10.0)
        opt = res.optimal_levels()
        assert all(level == 4 for level in opt.values())

    def test_topology_b_validation(self):
        with pytest.raises(ValueError):
            build_topology_b(n_sessions=0)

    def test_topology_a_converges_toward_optimum(self):
        sc = build_topology_a(n_receivers=2, traffic="cbr", seed=3)
        res = sc.run(200.0)
        # Class A should average near 4, class B near 2, after warmup.
        a_mean = sc.receivers[0].trace.time_weighted_mean(60.0, 200.0)
        b_mean = sc.receivers[1].trace.time_weighted_mean(60.0, 200.0)
        assert 3.0 <= a_mean <= 5.0
        assert 1.2 <= b_mean <= 3.0
        assert res.mean_deviation(60.0, 200.0) < 0.5

    def test_topology_b_roughly_fair(self):
        sc = build_topology_b(n_sessions=2, traffic="cbr", seed=3)
        res = sc.run(200.0)
        means = [h.trace.time_weighted_mean(60.0, 200.0) for h in sc.receivers]
        assert all(2.0 <= m <= 5.5 for m in means), means

    def test_rlm_mode_runs(self):
        sc = build_topology_a(n_receivers=2, receiver_mode="rlm", seed=1)
        res = sc.run(100.0)
        assert all(h.agent is not None for h in sc.receivers)
        assert all(h.receiver.total_bytes > 0 for h in sc.receivers)
