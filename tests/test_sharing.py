"""Unit tests for stage 4: fair bandwidth sharing on shared links."""

import math

import pytest

from repro.core.session_topology import SessionTree
from repro.core.sharing import (
    compute_fair_shares,
    compute_max_demands,
    find_shared_links,
)
from repro.media.layers import PAPER_SCHEDULE, LayerSchedule


def caps(mapping):
    return lambda e: mapping.get(e, math.inf)


def two_sessions_shared_link():
    """Sessions A and B both cross (x, y); receivers diverge below y."""
    ta = SessionTree("A", "sa", [("sa", "x"), ("x", "y"), ("y", "ra")], {"ra": "ra"})
    tb = SessionTree("B", "sb", [("sb", "x"), ("x", "y"), ("y", "rb")], {"rb": "rb"})
    return ta, tb


class TestFindSharedLinks:
    def test_shared_detection(self):
        ta, tb = two_sessions_shared_link()
        shared = find_shared_links([ta, tb])
        assert set(shared) == {("x", "y")}
        assert sorted(shared[("x", "y")]) == ["A", "B"]

    def test_disjoint_trees_share_nothing(self):
        ta = SessionTree("A", 1, [(1, 2)], {2: "a"})
        tb = SessionTree("B", 3, [(3, 4)], {4: "b"})
        assert find_shared_links([ta, tb]) == {}

    def test_single_session_never_shared(self):
        ta, _ = two_sessions_shared_link()
        assert find_shared_links([ta]) == {}


class TestMaxDemands:
    def test_unbounded_gives_full_session(self):
        ta, tb = two_sessions_shared_link()
        shared = find_shared_links([ta, tb])
        base = {"A": 32_000.0, "B": 32_000.0}
        d = compute_max_demands(ta, PAPER_SCHEDULE, caps({}), shared, base)
        assert d["ra"] == PAPER_SCHEDULE.cumulative(6)
        assert d["sa"] == PAPER_SCHEDULE.cumulative(6)

    def test_shared_capacity_minus_other_bases(self):
        ta, tb = two_sessions_shared_link()
        shared = find_shared_links([ta, tb])
        base = {"A": 32_000.0, "B": 32_000.0}
        # 512 Kb/s shared link; others take base 32 -> 480 available -> 4 layers.
        d = compute_max_demands(
            ta, PAPER_SCHEDULE, caps({("x", "y"): 512_000.0}), shared, base
        )
        assert d["ra"] == PAPER_SCHEDULE.cumulative(4)

    def test_base_layer_always_granted(self):
        ta, tb = two_sessions_shared_link()
        shared = find_shared_links([ta, tb])
        base = {"A": 32_000.0, "B": 32_000.0}
        # Tiny link: available < base, but x_i floors at the base rate.
        d = compute_max_demands(
            ta, PAPER_SCHEDULE, caps({("x", "y"): 10_000.0}), shared, base
        )
        assert d["ra"] == PAPER_SCHEDULE.cumulative(1)

    def test_internal_demand_is_max_of_children(self):
        t = SessionTree("A", 1, [(1, 2), (2, 3), (2, 4)], {3: "r3", 4: "r4"})
        d = compute_max_demands(
            t, PAPER_SCHEDULE,
            caps({(2, 3): 100_000.0, (2, 4): 700_000.0}), {}, {"A": 32_000.0},
        )
        # 100 Kb/s fits layers 1+2 = 96 Kb/s -> level 2.
        assert d[3] == pytest.approx(PAPER_SCHEDULE.cumulative(2))
        assert d[4] == pytest.approx(PAPER_SCHEDULE.cumulative(4))
        assert d[2] == d[4]


class TestFairShares:
    def test_no_shared_links_empty(self):
        ta = SessionTree("A", 1, [(1, 2)], {2: "a"})
        assert compute_fair_shares([ta], {"A": PAPER_SCHEDULE}, caps({})) == {}

    def test_infinite_capacity_gives_infinite_share(self):
        ta, tb = two_sessions_shared_link()
        fair = compute_fair_shares(
            [ta, tb], {"A": PAPER_SCHEDULE, "B": PAPER_SCHEDULE}, caps({})
        )
        assert fair[(("x", "y"), "A")] == math.inf
        assert fair[(("x", "y"), "B")] == math.inf

    def test_equal_demands_split_evenly(self):
        ta, tb = two_sessions_shared_link()
        fair = compute_fair_shares(
            [ta, tb],
            {"A": PAPER_SCHEDULE, "B": PAPER_SCHEDULE},
            caps({("x", "y"): 1_000_000.0}),
        )
        assert fair[(("x", "y"), "A")] == pytest.approx(500_000.0)
        assert fair[(("x", "y"), "B")] == pytest.approx(500_000.0)

    def test_paper_example_proportional_to_downstream_bottleneck(self):
        """Paper: one session bottlenecked at ~250 Kb/s downstream should not
        get the same share as one that can use 1 Mb/s."""
        ta = SessionTree("A", "sa", [("sa", "x"), ("x", "y"), ("y", "ra")], {"ra": "ra"})
        tb = SessionTree("B", "sb", [("sb", "x"), ("x", "y"), ("y", "rb")], {"rb": "rb"})
        capacity = caps({
            ("x", "y"): 1_200_000.0,
            ("y", "ra"): 250_000.0,   # A's downstream bottleneck -> 3 layers (224k)
            ("y", "rb"): 1_000_000.0,  # B can take 5 layers (992k)
        })
        fair = compute_fair_shares(
            [ta, tb], {"A": PAPER_SCHEDULE, "B": PAPER_SCHEDULE}, capacity
        )
        share_a = fair[(("x", "y"), "A")]
        share_b = fair[(("x", "y"), "B")]
        assert share_b > share_a
        # Proportional split of 1.2 Mb/s by x_A=224k, x_B=992k.
        assert share_a == pytest.approx(1_200_000 * 224 / (224 + 992))
        assert share_b == pytest.approx(1_200_000 * 992 / (224 + 992))

    def test_sessions_with_different_schedules(self):
        small = LayerSchedule(n_layers=2, base_rate=10_000)
        ta, tb = two_sessions_shared_link()
        fair = compute_fair_shares(
            [ta, tb],
            {"A": small, "B": PAPER_SCHEDULE},
            caps({("x", "y"): 300_000.0}),
        )
        xa = small.cumulative(2)  # 30k max for A
        # B: available = 300k - 10k(base of A) = 290k -> level 3 (224k).
        xb = PAPER_SCHEDULE.cumulative(3)
        assert fair[(("x", "y"), "A")] == pytest.approx(300_000 * xa / (xa + xb))
        assert fair[(("x", "y"), "B")] == pytest.approx(300_000 * xb / (xa + xb))

    def test_three_way_share(self):
        trees = []
        for sid in ("A", "B", "C"):
            trees.append(
                SessionTree(
                    sid, f"s{sid}",
                    [(f"s{sid}", "x"), ("x", "y"), ("y", f"r{sid}")],
                    {f"r{sid}": f"r{sid}"},
                )
            )
        fair = compute_fair_shares(
            trees, {t.session_id: PAPER_SCHEDULE for t in trees},
            caps({("x", "y"): 900_000.0}),
        )
        shares = [fair[(("x", "y"), sid)] for sid in ("A", "B", "C")]
        assert shares[0] == pytest.approx(shares[1]) == pytest.approx(shares[2])
        assert sum(shares) == pytest.approx(900_000.0)
