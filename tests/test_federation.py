"""Tests for the federated multi-domain control plane.

Covers the partitioner's clipping (explicit assignments and gateway-subtree
derivation, on both the hand-built multi-domain topology and the random
tiered generator), shard isolation and seeding, the coordinator's
aggregates-only contract, sequential/parallel mode equivalence, and a small
end-to-end ``run_federate`` sweep.
"""

import dataclasses

import pytest

from repro.control.messages import (
    ADVICE_SIZE,
    SUMMARY_SIZE,
    FederationAdvice,
    Report,
    SubtreeSummary,
)
from repro.experiments.domains import (
    build_multi_domain_topology,
    domain_gateways,
)
from repro.experiments.tiered import build_tiered_topology
from repro.federation import (
    BORDER_NODE,
    DomainPartitioner,
    DomainShard,
    FederatedSession,
    FederationCoordinator,
    build_federated_views,
    gateways_for_tier,
    run_federate,
    shard_seed,
)


def _views(n_domains=2, receivers_per_domain=2, seed=0, traffic="cbr"):
    return build_federated_views(
        n_domains, receivers_per_domain, seed=seed, traffic=traffic
    )


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------


class TestPartitioner:
    def test_by_gateways_multi_domain(self):
        sc = build_multi_domain_topology(n_domains=3, receivers_per_domain=2)
        views = DomainPartitioner.by_gateways(
            sc, domain_gateways(3)
        ).partition(sc)
        assert sorted(views) == ["d1", "d2", "d3"]
        for d, view in views.items():
            k = d[1:]
            assert str(view.gateway) == f"gw{k}"
            assert view.receiver_count == 2
            # backbone stays outside every domain
            names = set(map(str, view.nodes))
            assert "src" not in names and "core" not in names
            assert all(r.node in view.nodes for r in view.receivers)

    def test_view_captures_link_attributes(self):
        sc = build_multi_domain_topology(n_domains=2, receivers_per_domain=2)
        (view,) = [
            v for v in DomainPartitioner.by_gateways(
                sc, domain_gateways(2)
            ).partition(sc).values()
            if v.domain == "d1"
        ]
        # the border uplink is core -> gw1
        uplink = sc.network.links[("core", "gw1")]
        assert view.uplink_bandwidth == uplink.bandwidth
        assert view.uplink_delay == uplink.delay
        assert view.uplink_queue_limit == uplink.queue.capacity
        # intra links are deduplicated (one record per bidirectional pair)
        pairs = {frozenset((str(l.a), str(l.b))) for l in view.links}
        assert len(pairs) == len(view.links)

    def test_by_gateways_tiered(self):
        sc = build_tiered_topology(seed=7, max_receivers=8)
        gateways = gateways_for_tier(sc, "regional")
        views = DomainPartitioner.by_gateways(sc, gateways).partition(sc)
        assert set(views) == set(map(str, gateways))
        covered = sum(v.receiver_count for v in views.values())
        assert covered == len(sc.receivers)  # every receiver in some domain
        for view in views.values():
            assert str(view.gateway).startswith("regional")

    def test_unknown_gateway_raises(self):
        sc = build_multi_domain_topology()
        with pytest.raises(KeyError):
            DomainPartitioner.by_gateways(sc, {"dX": "nope"})

    def test_source_inside_domain_raises(self):
        sc = build_multi_domain_topology()
        nodes = set(map(str, sc.network.nodes))
        assignment = {n: "all" for n in sc.network.nodes}
        assert "src" in nodes
        with pytest.raises(ValueError, match="source"):
            DomainPartitioner(assignment).partition(sc)

    def test_multiple_border_entries_raise(self):
        # Lump both gateways' subtrees into ONE domain: traffic then enters
        # through two border links, which single-gateway views must reject.
        sc = build_multi_domain_topology(n_domains=2, receivers_per_domain=2)
        merged = {
            node: "merged"
            for node, _d in DomainPartitioner.by_gateways(
                sc, domain_gateways(2)
            ).assignment.items()
        }
        with pytest.raises(ValueError, match="border"):
            DomainPartitioner(merged).partition(sc)

    def test_empty_assignment_rejected(self):
        with pytest.raises(ValueError):
            DomainPartitioner({})

    def test_unknown_nodes_in_explicit_assignment(self):
        sc = build_multi_domain_topology()
        with pytest.raises(KeyError, match="unknown nodes"):
            DomainPartitioner({"no-such-node": "d1"}).partition(sc)

    def test_multi_entry_error_names_the_domain(self):
        sc = build_multi_domain_topology(n_domains=2, receivers_per_domain=2)
        merged = {
            node: "merged"
            for node in DomainPartitioner.by_gateways(
                sc, domain_gateways(2)
            ).assignment
        }
        with pytest.raises(ValueError, match="'merged'"):
            DomainPartitioner(merged).partition(sc)

    def test_unreachable_domain_error_names_the_domain(self):
        sc = build_multi_domain_topology()
        sc.add_node("island")  # no links: no path from any source
        with pytest.raises(ValueError, match="'dX' unreachable"):
            DomainPartitioner({"island": "dX"}).partition(sc)

    def test_by_gateways_needs_sessions(self):
        sc = build_multi_domain_topology()
        sc.sessions.clear()
        with pytest.raises(ValueError, match="no sessions"):
            DomainPartitioner.by_gateways(sc, domain_gateways(2))


# ----------------------------------------------------------------------
# Shards
# ----------------------------------------------------------------------


class TestShard:
    def test_shard_seed_stable_and_per_domain(self):
        assert shard_seed(1, "d1") == shard_seed(1, "d1")
        assert shard_seed(1, "d1") != shard_seed(1, "d2")
        assert shard_seed(1, "d1") != shard_seed(2, "d1")

    def test_rebuild_is_standalone(self):
        view = _views(n_domains=2)[0]
        shard = DomainShard(view, seed=1)
        names = set(map(str, shard.scenario.network.nodes))
        assert BORDER_NODE in names
        assert names - {BORDER_NODE} == set(map(str, view.nodes))
        assert len(shard.scenario.receivers) == view.receiver_count
        # controller is domain-scoped at the gateway
        assert str(view.domain) in shard.scenario.controllers

    def test_deterministic_run(self):
        view = _views(n_domains=2)[0]
        traces = []
        for _ in range(2):
            shard = DomainShard(view, seed=3)
            shard.run_to(24.0)
            traces.append([
                (str(h.receiver_id), list(h.trace.times),
                 list(h.trace.values), h.receiver.level)
                for h in shard.scenario.receivers
            ])
        assert traces[0] == traces[1]

    def test_seed_independent_of_sibling_domains(self):
        """A domain's shard seed never depends on how many siblings exist."""
        assert shard_seed(5, "d1") == shard_seed(5, "d1")
        s2 = DomainShard(_views(n_domains=2, seed=0)[0], seed=5)
        s4 = DomainShard(_views(n_domains=4, seed=0)[0], seed=5)
        assert s2.seed == s4.seed

    def test_summaries_aggregate_only(self):
        view = _views(n_domains=2)[0]
        shard = DomainShard(view, seed=1)
        shard.run_to(12.0)
        (summary,) = shard.summaries(12.0)
        assert isinstance(summary, SubtreeSummary)
        assert summary.receiver_count == view.receiver_count
        assert summary.min_level <= summary.max_level
        assert summary.bottleneck_bps >= 0.0
        # nothing receiver-granular in the schema
        fields = {f.name for f in dataclasses.fields(SubtreeSummary)}
        assert "receiver_id" not in fields and "node" not in fields
        assert shard.summary_bytes_sent == SUMMARY_SIZE

    def test_apply_advice_type_checked(self):
        shard = DomainShard(_views()[0], seed=1)
        with pytest.raises(TypeError):
            shard.apply_advice("not advice")
        advice = FederationAdvice(
            session_id="s0", ceiling=4, floor=1, receiver_count=8,
            bottleneck_bps=1e5, issued_at=4.0,
        )
        shard.apply_advice(advice)
        assert shard.advice["s0"] is advice


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------


def _summary(domain="d1", session_id="s0", receivers=2, min_level=1,
             max_level=3, bottleneck=2e5, now=4.0):
    return SubtreeSummary(
        domain=domain, session_id=session_id, gateway=f"gw-{domain}",
        receiver_count=receivers, mean_loss=0.01, max_loss=0.05,
        min_level=min_level, max_level=max_level,
        level_sum=receivers * max_level, bottleneck_bps=bottleneck,
        issued_at=now,
    )


class TestCoordinator:
    def test_rejects_per_receiver_reports(self):
        coord = FederationCoordinator()
        report = Report(receiver_id="R0", session_id="s0", loss_rate=0.1,
                       bytes=1e4, level=2, t0=0.0, t1=4.0)
        with pytest.raises(TypeError, match="SubtreeSummary"):
            coord.receive(report)
        assert coord.rejected_messages == 1
        assert coord.tracked() == 0

    def test_merge_spans_domains(self):
        coord = FederationCoordinator()
        coord.receive(_summary("d1", min_level=2, max_level=3, bottleneck=3e5))
        coord.receive(_summary("d2", min_level=1, max_level=5, bottleneck=1e5))
        (advice,) = coord.merge(now=8.0)
        assert advice.ceiling == 5
        assert advice.floor == 1
        assert advice.receiver_count == 4
        assert advice.bottleneck_bps == 1e5

    def test_empty_domain_does_not_drag_ceiling(self):
        coord = FederationCoordinator()
        coord.receive(_summary("d1", min_level=3, max_level=4))
        coord.receive(_summary("d2", receivers=0, min_level=0, max_level=0,
                               bottleneck=0.0))
        (advice,) = coord.merge(now=8.0)
        assert advice.ceiling == 4 and advice.floor == 3
        assert advice.receiver_count == 2

    def test_state_bounded_by_domains_times_sessions(self):
        coord = FederationCoordinator()
        for _round in range(10):
            for d in ("d1", "d2", "d3"):
                coord.receive(_summary(d))
        assert coord.tracked() == 3  # one latest per (session, domain)
        assert coord.peak_tracked == 3
        assert coord.state_bytes() == 3 * SUMMARY_SIZE
        assert coord.summaries_received == 30


# ----------------------------------------------------------------------
# Federated session
# ----------------------------------------------------------------------


def _session_digest(fed):
    return {
        "advice": {
            str(sid): (a.ceiling, a.floor, a.receiver_count, a.bottleneck_bps)
            for sid, a in fed.coordinator.session_advice.items()
        },
        "tiers": fed.control_bytes_by_tier(),
        "events": fed.events_processed,
        "levels": [
            (str(h.receiver_id), h.receiver.level) for h in fed.receivers
        ],
        "rounds": fed.rounds_completed,
    }


class TestFederatedSession:
    def test_sequential_equals_parallel(self):
        views = _views(n_domains=4, receivers_per_domain=2, seed=2)
        digests = []
        for parallel in (False, True):
            fed = FederatedSession(views, seed=2, cadence=4.0,
                                   parallel=parallel)
            fed.run(24.0)
            digests.append(_session_digest(fed))
        assert digests[0] == digests[1]

    def test_control_byte_tiers(self):
        fed = FederatedSession(_views(seed=1), seed=1, cadence=4.0)
        fed.run(16.0)
        tiers = fed.control_bytes_by_tier()
        assert set(tiers) == {"intra_domain", "summary", "advice"}
        # 4 rounds x 2 domains x 1 session each way
        assert tiers["summary"] == 4 * 2 * SUMMARY_SIZE
        assert tiers["advice"] == 4 * 2 * ADVICE_SIZE
        assert tiers["intra_domain"] > tiers["summary"]
        assert fed.control_bytes_total() == sum(tiers.values())

    def test_emits_federation_topics(self):
        from repro.obs.bus import EventBus

        bus = EventBus()
        seen = []
        for topic in ("federation.summary", "federation.suggestion",
                      "federation.round"):
            bus.subscribe(topic, lambda ev, t=topic: seen.append(t))
        fed = FederatedSession(_views(seed=1), seed=1, cadence=4.0, bus=bus)
        fed.run(8.0)
        assert set(seen) == {"federation.summary", "federation.suggestion",
                             "federation.round"}

    def test_duplicate_domains_rejected(self):
        view = _views()[0]
        with pytest.raises(ValueError, match="duplicate"):
            FederatedSession([view, view], seed=1)

    def test_bad_cadence_rejected(self):
        with pytest.raises(ValueError):
            FederatedSession(_views(), seed=1, cadence=0.0)


# ----------------------------------------------------------------------
# The federate experiment
# ----------------------------------------------------------------------


class TestRunFederate:
    def test_small_sweep_passes_gates(self):
        result = run_federate(
            seed=1, duration=20.0, total_receivers=16,
            domain_counts=(2, 4), check_parallel=True,
        )
        assert result["ok"], result["gates"]
        assert [p["n_domains"] for p in result["points"]] == [2, 4]
        assert all(p["n_receivers"] == 16 for p in result["points"])
        assert result["parallel_check"]["identical"] is True
        for p in result["points"]:
            assert p["coordinator"]["rejected_messages"] == 0
            assert p["coordinator"]["peak_tracked"] <= (
                p["n_domains"] * len(p["advice"])
            )

    def test_uneven_split_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            run_federate(total_receivers=10, domain_counts=(3,),
                         duration=4.0, check_parallel=False)
