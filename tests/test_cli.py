"""Smoke tests for the CLI and the per-figure experiment drivers."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments import figures


class TestFigureDrivers:
    def test_fig6_rows(self):
        rows = figures.fig6_stability_topology_a(
            receiver_counts=(2,), traffic_models=(("cbr", 0.0),), duration=40.0
        )
        assert len(rows) == 1
        assert rows[0]["figure"] == "6"
        assert rows[0]["traffic"] == "CBR"
        assert rows[0]["max_changes"] >= 0
        assert rows[0]["mean_gap_s"] > 0

    def test_fig7_rows(self):
        rows = figures.fig7_stability_topology_b(
            session_counts=(2,), traffic_models=(("vbr", 3.0),), duration=40.0
        )
        assert len(rows) == 1
        assert rows[0]["traffic"] == "VBR(P=3)"

    def test_fig8_rows(self):
        rows = figures.fig8_fairness(
            session_counts=(2,), traffic_models=(("cbr", 0.0),), duration=60.0
        )
        assert len(rows) == 1
        assert 0 <= rows[0]["deviation_first_half"]
        assert 0 <= rows[0]["deviation_second_half"]

    def test_fig9_structure(self):
        data = figures.fig9_timeseries(n_sessions=2, duration=60.0)
        assert data["n_sessions"] == 2
        assert len(data["sessions"]) == 2
        for s in data["sessions"].values():
            assert "subscription" in s and "loss" in s
            assert s["mean_level"] > 0

    def test_fig10_rows(self):
        rows = figures.fig10_staleness(
            staleness_values=(0.0, 4.0), receiver_counts=(2,), duration=60.0
        )
        assert len(rows) == 2
        assert {r["staleness_s"] for r in rows} == {0.0, 4.0}

    def test_table1_complete(self):
        rows = figures.table1_rows()
        assert len(rows) == 48

    def test_default_duration_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        monkeypatch.delenv("REPRO_DURATION", raising=False)
        assert figures.default_duration(123.0) == 123.0
        monkeypatch.setenv("REPRO_DURATION", "77")
        assert figures.default_duration() == 77.0
        monkeypatch.setenv("REPRO_FULL", "1")
        assert figures.default_duration() == 1200.0


class TestCli:
    def test_table1_plain(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "add_layer" in out
        assert "reduce_half_old" in out

    def test_table1_json(self, capsys):
        assert main(["table1", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 48

    def test_demo_topology_a(self, capsys):
        assert main(["demo", "--topology", "a", "--receivers", "2",
                     "--duration", "30", "--no-artifacts"]) == 0
        out = capsys.readouterr().out
        assert "mean relative deviation" in out

    def test_demo_topology_b(self, capsys):
        assert main(["demo", "--topology", "b", "--receivers", "2",
                     "--duration", "30", "--no-artifacts"]) == 0
        assert "session" in capsys.readouterr().out

    def test_demo_writes_run_artifacts(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["demo", "--topology", "a", "--receivers", "2",
                     "--duration", "20"]) == 0
        assert "run artifacts" in capsys.readouterr().err
        (run_dir,) = tmp_path.iterdir()
        assert run_dir.name.startswith("demo-s1-")
        manifest = json.loads((run_dir / "manifest.json").read_text())
        assert manifest["experiment"] == "demo"
        assert manifest["args"]["topology"] == "a"
        assert (run_dir / "events.jsonl").exists()
        assert (run_dir / "metrics.json").exists()

    def test_no_artifacts_writes_nothing(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["demo", "--topology", "a", "--receivers", "2",
                     "--duration", "20", "--no-artifacts"]) == 0
        capsys.readouterr()
        assert list(tmp_path.iterdir()) == []

    def test_bench_quick(self, capsys, tmp_path, monkeypatch):
        from repro.obs import bench as bench_mod

        # Shrink horizons so the CLI smoke stays fast; scenario set unchanged.
        short = tuple((n, b, f, 6.0) for (n, b, f, _q) in bench_mod.BENCH_SUITE)
        monkeypatch.setattr(bench_mod, "BENCH_SUITE", short)
        assert main(["bench", "--quick", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out
        (bench_file,) = tmp_path.glob("BENCH_*.json")
        result = json.loads(bench_file.read_text())
        assert result["quick"] is True
        assert result["totals"]["events"] > 0

    def test_bench_baseline_gate_failure_exits_nonzero(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.obs import bench as bench_mod

        short = tuple((n, b, f, 6.0) for (n, b, f, _q) in bench_mod.BENCH_SUITE)
        monkeypatch.setattr(bench_mod, "BENCH_SUITE", short)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"totals": {"events_per_sec": 1e12}}))
        with pytest.raises(SystemExit):
            main(["bench", "--quick", "--out", str(tmp_path),
                  "--baseline", str(baseline)])
        assert "FAIL" in capsys.readouterr().out

    def test_federate_json(self, capsys):
        assert main(["federate", "--receivers", "16", "--domains", "2,4",
                     "--duration", "20", "--no-parallel-check",
                     "--no-artifacts", "--json"]) == 0
        result = json.loads(capsys.readouterr().out)
        assert result["ok"] is True
        assert [p["n_domains"] for p in result["points"]] == [2, 4]
        assert result["gates"]["no_per_receiver_reports"] is True

    def test_federate_writes_artifacts_with_events(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path))
        assert main(["federate", "--receivers", "8", "--domains", "2",
                     "--duration", "20", "--no-parallel-check"]) == 0
        capsys.readouterr()
        (run_dir,) = tmp_path.iterdir()
        assert run_dir.name.startswith("federate-s1-")
        events = (run_dir / "events.jsonl").read_text()
        assert '"federation.round"' in events
        assert '"federation.summary"' in events
        assert '"federation.suggestion"' in events

    def test_fig9_summary_output(self, capsys):
        assert main(["fig9", "--duration", "40"]) == 0
        out = capsys.readouterr().out
        assert "mean level" in out

    def test_fig10_json(self, capsys):
        assert main(["fig10", "--duration", "30", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert all("staleness_s" in r for r in rows)

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestLintExitCodes:
    """``repro lint`` exit codes are CLI-conventional: 0 / 1 / 2."""

    REPO_ROOT = Path(__file__).resolve().parent.parent

    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint", "--root", str(self.REPO_ROOT)]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        target = tmp_path / "src" / "repro" / "simnet"
        target.mkdir(parents=True)
        (target / "clock.py").write_text(
            "import time\n\ndef now():\n    return time.time()\n"
        )
        assert main(["lint", "--root", str(tmp_path)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_internal_error_exits_two(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "oops.py").write_text("this is not python (\n")
        assert main(["lint", "--root", str(tmp_path)]) == 2
        assert "lint:" in capsys.readouterr().err


class TestSanitizeCli:
    """``repro sanitize``: pass exits zero, report names the verdict."""

    def test_small_run_passes(self, capsys):
        rc = main([
            "sanitize", "--seed", "1", "--duration", "10",
            "--domains", "2", "--receivers-per-domain", "4",
            "--fuzz-seeds", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "seed 1: ok" in out

    def test_json_document(self, capsys):
        rc = main([
            "sanitize", "--seed", "2", "--duration", "10",
            "--domains", "2", "--receivers-per-domain", "4",
            "--fuzz-seeds", "1", "--json",
        ])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["checks"][0]["identical"] is True

    def test_bad_fuzz_seeds_is_usage_error(self):
        with pytest.raises(SystemExit):
            main(["sanitize", "--fuzz-seeds", "0", "--duration", "5"])
