"""Unit tests for the RLM (receiver-driven) baseline."""

import numpy as np
import pytest

from repro.baselines.rlm import RLMReceiver
from repro.media.layers import LayerSchedule
from repro.media.receiver import LayeredReceiver
from repro.media.source import LayeredSource
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def build(bottleneck=10e6, n_layers=4):
    sched = Scheduler()
    net = Network(sched)
    for n in ["s", "m", "r"]:
        net.add_node(n)
    net.add_link("s", "m", bandwidth=10e6, delay=0.05)
    net.add_link("m", "r", bandwidth=bottleneck, delay=0.05, queue_limit=8)
    net.build_routes()
    mcast = MulticastManager(net, leave_latency=0.5, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = tuple(mcast.create_group("s") for _ in range(n_layers))
    src = LayeredSource(net.node("s"), 0, groups, schedule, model="cbr")
    src.start()
    rcv = LayeredReceiver(net.node("r"), 0, list(groups), schedule, mcast, initial_level=1)
    rlm = RLMReceiver(rcv, interval=1.0, rng=np.random.default_rng(0))
    return sched, rcv, rlm


def test_climbs_when_capacity_available():
    sched, rcv, rlm = build(bottleneck=10e6)
    rlm.start()
    sched.run(until=60.0)
    assert rcv.level == 4
    assert rlm.successful_experiments >= 3


def test_converges_near_bottleneck():
    # 100 Kb/s: fits layers 1+2 (96k), not 3 (224k).
    sched, rcv, rlm = build(bottleneck=100e3)
    rlm.start()
    sched.run(until=120.0)
    mean = rcv.trace.time_weighted_mean(40.0, 120.0)
    assert 1.3 <= mean <= 2.7
    assert rlm.failed_experiments >= 1
    assert rlm.drops >= 1


def test_failed_experiment_backs_off_exponentially():
    sched, rcv, rlm = build(bottleneck=100e3)
    rlm.start()
    sched.run(until=200.0)
    # Layer 3's join timer should have grown beyond its initial value.
    assert rlm.join_timer[3] > rlm.t_join_init


def test_join_timer_capped():
    sched, rcv, rlm = build(bottleneck=100e3)
    rlm.t_join_max = 20.0
    rlm.start()
    sched.run(until=400.0)
    assert rlm.join_timer[3] <= 20.0


def test_successful_experiment_relaxes_timer():
    sched, rcv, rlm = build(bottleneck=10e6)
    rlm.join_timer[2] = 40.0
    rlm.next_join_at[2] = 0.0
    rlm.start()
    sched.run(until=30.0)
    assert rlm.join_timer[2] < 40.0


def test_deaf_period_after_drop():
    sched, rcv, rlm = build(bottleneck=100e3)
    rlm.start()
    sched.run(until=120.0)
    # Drops happen but not on every tick: the deaf period spaces them.
    assert rlm.drops < 120 / (rlm.deaf_time + rlm.interval) + 5


def test_never_drops_below_base_layer():
    sched, rcv, rlm = build(bottleneck=10e3)  # below base rate: constant loss
    rlm.start()
    sched.run(until=60.0)
    assert rcv.level == 1


def test_parameter_validation():
    sched, rcv, _ = build()
    with pytest.raises(ValueError):
        RLMReceiver(rcv, interval=0.0)
    with pytest.raises(ValueError):
        RLMReceiver(rcv, t_join_init=10.0, t_join_max=5.0)
    with pytest.raises(ValueError):
        RLMReceiver(rcv, detection_time=0.0)


def test_start_twice_noop():
    sched, rcv, rlm = build()
    rlm.start()
    rlm.start()
    sched.run(until=10.0)
    # One adaptation loop only: at most one level change per interval.
    assert rcv.trace.num_changes(0.0, 10.0) <= 10
