"""Unit tests for stage 1: congestion-state computation."""

import pytest

from repro.core.config import TopoSenseConfig
from repro.core.congestion import (
    compute_congestion,
    compute_loss_rates,
    compute_subtree_bytes,
)
from repro.core.session_topology import SessionTree


CFG = TopoSenseConfig(p_threshold=0.05, eta_similar=0.6, similar_tolerance=0.5)


def tree():
    r"""    1
           / \
          2   5
         / \   \
        3   4   6
    """
    return SessionTree("s", 1, [(1, 2), (2, 3), (2, 4), (1, 5), (5, 6)],
                       {3: "r3", 4: "r4", 6: "r6"})


class TestLossRates:
    def test_internal_loss_is_min_of_children(self):
        loss = compute_loss_rates(tree(), {3: 0.10, 4: 0.02, 6: 0.0})
        assert loss[2] == pytest.approx(0.02)
        assert loss[5] == pytest.approx(0.0)
        assert loss[1] == pytest.approx(0.0)

    def test_all_children_lossy_propagates(self):
        loss = compute_loss_rates(tree(), {3: 0.10, 4: 0.08, 6: 0.2})
        assert loss[2] == pytest.approx(0.08)
        assert loss[1] == pytest.approx(0.08)

    def test_missing_leaf_reports_excluded(self):
        loss = compute_loss_rates(tree(), {3: 0.10})
        assert loss[3] == pytest.approx(0.10)
        assert loss[4] is None
        assert loss[2] == pytest.approx(0.10)  # min over known children only

    def test_all_missing_gives_none(self):
        loss = compute_loss_rates(tree(), {})
        assert loss[1] is None
        assert loss[2] is None


class TestCongestion:
    def test_leaf_over_threshold_congested(self):
        t = tree()
        loss = compute_loss_rates(t, {3: 0.10, 4: 0.0, 6: 0.0})
        cong = compute_congestion(t, loss, CFG)
        assert cong[3] is True
        assert cong[4] is False
        assert cong[2] is False  # one child clean -> internal not congested

    def test_leaf_at_threshold_not_congested(self):
        t = tree()
        loss = compute_loss_rates(t, {3: 0.05, 4: 0.0, 6: 0.0})
        cong = compute_congestion(t, loss, CFG)
        assert cong[3] is False

    def test_internal_congested_when_children_similarly_lossy(self):
        t = tree()
        loss = compute_loss_rates(t, {3: 0.10, 4: 0.11, 6: 0.0})
        cong = compute_congestion(t, loss, CFG)
        assert cong[2] is True
        assert cong[1] is False  # child 5 is clean

    def test_internal_not_congested_when_losses_dissimilar(self):
        t = tree()
        # Both above threshold but wildly different: probably different causes.
        loss = compute_loss_rates(t, {3: 0.06, 4: 0.90, 6: 0.0})
        cong = compute_congestion(t, loss, CFG)
        assert cong[2] is False
        # The individual leaves are still congested though.
        assert cong[3] is True and cong[4] is True

    def test_parent_congestion_propagates_down(self):
        t = tree()
        # Everyone lossy and similar -> root congested -> everything congested.
        loss = compute_loss_rates(t, {3: 0.10, 4: 0.10, 6: 0.10})
        cong = compute_congestion(t, loss, CFG)
        assert all(cong.values())

    def test_eta_similar_fraction(self):
        # Node 2 has 3 lossy children but none close to the mean -> not
        # congested; a clean sibling leaf keeps the root clean too.
        t = SessionTree("s", 1, [(1, 2), (2, 3), (2, 4), (2, 5), (1, 6)],
                        {3: "a", 4: "b", 5: "c", 6: "d"})
        loss = compute_loss_rates(t, {3: 0.06, 4: 0.06, 5: 0.9, 6: 0.0})
        cong = compute_congestion(t, loss, CFG)
        # mean = 0.34; 0.06 deviates 0.28 > 0.17 tolerance; 0.9 deviates 0.56.
        assert cong[2] is False
        assert cong[1] is False

    def test_single_child_chain_inherits_congestion(self):
        # With one child the similarity condition is trivially satisfied, so
        # a chain node is congested whenever its only child is (paper rule).
        t = SessionTree("s", 1, [(1, 2), (2, 3)], {3: "r"})
        loss = compute_loss_rates(t, {3: 0.2})
        cong = compute_congestion(t, loss, CFG)
        assert cong[2] is True and cong[1] is True

    def test_missing_children_reports_block_internal_congestion(self):
        t = tree()
        loss = compute_loss_rates(t, {3: 0.10})  # node 4 unknown
        cong = compute_congestion(t, loss, CFG)
        assert cong[2] is False

    def test_unreported_leaf_not_congested(self):
        t = tree()
        loss = compute_loss_rates(t, {})
        cong = compute_congestion(t, loss, CFG)
        assert not any(cong.values())

    def test_single_receiver_chain(self):
        t = SessionTree("s", 1, [(1, 2), (2, 3)], {3: "r"})
        loss = compute_loss_rates(t, {3: 0.2})
        cong = compute_congestion(t, loss, CFG)
        # Single child is trivially "similar to the mean".
        assert cong[3] and cong[2] and cong[1]


class TestSubtreeBytes:
    def test_max_over_subtree(self):
        t = tree()
        out = compute_subtree_bytes(t, {3: 100.0, 4: 500.0, 6: 250.0})
        assert out[3] == 100.0
        assert out[2] == 500.0
        assert out[5] == 250.0
        assert out[1] == 500.0

    def test_missing_leaf_counts_zero(self):
        t = tree()
        out = compute_subtree_bytes(t, {3: 100.0})
        assert out[4] == 0.0
        assert out[2] == 100.0
