"""Property-based tests for the oracle allocation and fair sharing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.oracle import optimal_levels
from repro.baselines.session_plan import SessionPlan
from repro.core.session_topology import SessionTree
from repro.core.sharing import compute_fair_shares, find_shared_links
from repro.media.layers import PAPER_SCHEDULE
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


# ----------------------------------------------------------------------
# Oracle: feasibility and maximality on random star-of-chains networks
# ----------------------------------------------------------------------
@st.composite
def random_star_network(draw):
    """src -> hub -> n receivers, random access bandwidths."""
    n = draw(st.integers(min_value=1, max_value=6))
    access = [
        draw(st.sampled_from([50e3, 100e3, 250e3, 500e3, 1e6, 2.5e6]))
        for _ in range(n)
    ]
    hub_bw = draw(st.sampled_from([500e3, 1e6, 4e6, 10e6]))
    net = Network(Scheduler())
    net.add_node("src")
    net.add_node("hub")
    net.add_link("src", "hub", bandwidth=hub_bw)
    plan = SessionPlan(0, "src", PAPER_SCHEDULE)
    for i, bw in enumerate(access):
        net.add_node(f"r{i}")
        net.add_link("hub", f"r{i}", bandwidth=bw)
        plan.add_receiver(f"R{i}", f"r{i}")
    net.build_routes()
    return net, plan


def _feasible(net, plan, levels):
    """Check multicast load fits every link (max-of-subtree semantics)."""
    hub_level = max(levels.values())
    if PAPER_SCHEDULE.cumulative(hub_level) > net.link("src", "hub").bandwidth + 1e-9:
        return False
    for rid, node in plan.receiver_nodes.items():
        lvl = levels[(0, rid)] if (0, rid) in levels else levels[rid]
        if PAPER_SCHEDULE.cumulative(lvl) > net.link("hub", node).bandwidth + 1e-9:
            return False
    return True


@given(random_star_network())
@settings(max_examples=40, deadline=None)
def test_oracle_allocation_is_feasible(net_plan):
    net, plan = net_plan
    levels = optimal_levels(net, [plan])
    hub_level = max(levels.values())
    assert PAPER_SCHEDULE.cumulative(hub_level) <= max(
        net.link("src", "hub").bandwidth, PAPER_SCHEDULE.cumulative(1)
    ) + 1e-9
    for (sid, rid), lvl in levels.items():
        node = plan.receiver_nodes[rid]
        access = net.link("hub", node).bandwidth
        if PAPER_SCHEDULE.cumulative(1) <= access:
            assert PAPER_SCHEDULE.cumulative(lvl) <= access + 1e-9


@given(random_star_network())
@settings(max_examples=40, deadline=None)
def test_oracle_allocation_is_maximal(net_plan):
    """No single receiver can be raised a layer without breaking a link."""
    net, plan = net_plan
    levels = optimal_levels(net, [plan])
    if not _feasible(net, plan, levels):
        return  # base layer itself infeasible: nothing to check
    for key in levels:
        if levels[key] >= PAPER_SCHEDULE.n_layers:
            continue
        bumped = dict(levels)
        bumped[key] += 1
        assert not _feasible(net, plan, bumped), (key, levels)


# ----------------------------------------------------------------------
# Fair sharing: conservation and positivity on random shared links
# ----------------------------------------------------------------------
@st.composite
def shared_link_sessions(draw):
    n = draw(st.integers(min_value=2, max_value=6))
    cap = draw(st.sampled_from([200e3, 500e3, 1e6, 2e6, 8e6]))
    down = [
        draw(st.sampled_from([100e3, 250e3, 500e3, 1e6, math.inf]))
        for _ in range(n)
    ]
    trees = []
    caps = {("x", "y"): cap}
    for i in range(n):
        trees.append(
            SessionTree(
                i, f"s{i}",
                [(f"s{i}", "x"), ("x", "y"), ("y", f"r{i}")],
                {f"r{i}": f"R{i}"},
            )
        )
        if down[i] != math.inf:
            caps[("y", f"r{i}")] = down[i]
    return trees, caps


@given(shared_link_sessions())
@settings(max_examples=40, deadline=None)
def test_fair_shares_conserve_capacity(ts):
    trees, caps = ts
    schedules = {t.session_id: PAPER_SCHEDULE for t in trees}
    fair = compute_fair_shares(trees, schedules, lambda e: caps.get(e, math.inf))
    shared = find_shared_links(trees)
    assert set(shared) == {("x", "y")}
    shares = [fair[(("x", "y"), t.session_id)] for t in trees]
    assert all(s > 0 for s in shares)
    total = sum(shares)
    assert total == pytest.approx(caps[("x", "y")], rel=1e-9)


@given(shared_link_sessions())
@settings(max_examples=40, deadline=None)
def test_fair_shares_monotone_in_downstream_capacity(ts):
    """A session with at least the downstream room of another never gets a
    smaller share."""
    trees, caps = ts
    schedules = {t.session_id: PAPER_SCHEDULE for t in trees}
    fair = compute_fair_shares(trees, schedules, lambda e: caps.get(e, math.inf))

    def down(i):
        return caps.get(("y", f"r{i}"), math.inf)

    for a in trees:
        for b in trees:
            if down(a.session_id) >= down(b.session_id):
                assert (
                    fair[(("x", "y"), a.session_id)]
                    >= fair[(("x", "y"), b.session_id)] - 1e-9
                )
