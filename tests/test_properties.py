"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottleneck import compute_bottlenecks, compute_handleable
from repro.core.capacity import LinkCapacityEstimator, LinkObservation
from repro.core.config import TopoSenseConfig
from repro.core.congestion import compute_congestion, compute_loss_rates, compute_subtree_bytes
from repro.core.decision_table import BwEquality, classify_bandwidth
from repro.core.session_topology import SessionTree
from repro.core.state import ControllerState
from repro.core.subscription import allocate_supply, compute_demands
from repro.core.types import ReceiverReport
from repro.media.layers import LayerSchedule, PAPER_SCHEDULE
from repro.simnet.engine import Scheduler
from repro.simnet.tracing import StepTrace


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def random_trees(draw, max_nodes=24):
    """A random rooted tree: node i's parent is drawn from 0..i-1."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    edges = []
    for child in range(1, n):
        parent = draw(st.integers(min_value=0, max_value=child - 1))
        edges.append((parent, child))
    tree = SessionTree("s", 0, edges, {})
    leaves = list(tree.leaves)
    receivers = {leaf: f"r{leaf}" for leaf in leaves}
    return SessionTree("s", 0, edges, receivers)


@st.composite
def tree_with_losses(draw):
    tree = draw(random_trees())
    losses = {
        leaf: draw(st.floats(min_value=0.0, max_value=1.0))
        for leaf in tree.leaves
    }
    return tree, losses


# ----------------------------------------------------------------------
# SessionTree invariants
# ----------------------------------------------------------------------
@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_traversals_cover_all_nodes_once(tree):
    td = tree.topdown()
    bu = tree.bottomup()
    assert sorted(map(str, td)) == sorted(map(str, bu))
    assert len(set(td)) == len(td)
    pos = {n: i for i, n in enumerate(td)}
    for child, parent in tree.parent.items():
        assert pos[parent] < pos[child]


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_path_from_root_is_consistent(tree):
    for leaf in tree.leaves:
        path = tree.path_from_root(leaf)
        assert path[0] == tree.root
        assert path[-1] == leaf
        for u, v in zip(path, path[1:]):
            assert tree.parent[v] == u


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_subtree_leaves_partition(tree):
    """The root's children's subtree leaves partition the leaf set."""
    kids = tree.children.get(tree.root, ())
    if not kids:
        return
    union = []
    for c in kids:
        union.extend(tree.subtree_leaves(c))
    assert sorted(map(str, union)) == sorted(map(str, tree.leaves))


# ----------------------------------------------------------------------
# Stage invariants
# ----------------------------------------------------------------------
@given(tree_with_losses())
@settings(max_examples=50, deadline=None)
def test_internal_loss_never_exceeds_children(tw):
    tree, losses = tw
    loss = compute_loss_rates(tree, losses)
    for node in tree.nodes:
        kids = tree.children.get(node)
        if kids:
            known = [loss[c] for c in kids if loss[c] is not None]
            if known:
                assert loss[node] == min(known)


@given(tree_with_losses())
@settings(max_examples=50, deadline=None)
def test_congestion_propagates_downward_closure(tw):
    """If a node is congested, its entire subtree is congested."""
    tree, losses = tw
    cfg = TopoSenseConfig()
    cong = compute_congestion(tree, compute_loss_rates(tree, losses), cfg)
    for node in tree.nodes:
        parent = tree.parent.get(node)
        if parent is not None and cong[parent]:
            assert cong[node]


@given(tree_with_losses())
@settings(max_examples=50, deadline=None)
def test_subtree_bytes_is_monotone_up_the_tree(tw):
    tree, losses = tw
    leaf_bytes = {leaf: v * 1e6 for leaf, v in losses.items()}
    out = compute_subtree_bytes(tree, leaf_bytes)
    for node in tree.nodes:
        parent = tree.parent.get(node)
        if parent is not None:
            assert out[parent] >= out[node] or not set(
                tree.subtree_leaves(node)
            ) <= set(tree.subtree_leaves(parent))


@given(random_trees(), st.dictionaries(st.integers(0, 23), st.floats(1e3, 1e8)))
@settings(max_examples=50, deadline=None)
def test_bottleneck_monotone_down_any_path(tree, caps_raw):
    caps = {}
    for node in tree.nodes:
        if node in tree.parent and node in caps_raw:
            caps[(tree.parent[node], node)] = caps_raw[node]
    b = compute_bottlenecks(tree, lambda e: caps.get(e, math.inf))
    for node in tree.nodes:
        parent = tree.parent.get(node)
        if parent is not None:
            assert b[node] <= b[parent]
    h = compute_handleable(tree, b)
    for node in tree.nodes:
        leaves = tree.subtree_leaves(node)
        assert h[node] == max(b[l] for l in leaves)


# ----------------------------------------------------------------------
# Decision table totality / classification
# ----------------------------------------------------------------------
@given(st.floats(0, 1e9), st.floats(0, 1e9), st.floats(0, 0.5))
@settings(max_examples=200, deadline=None)
def test_classify_bandwidth_total_and_antisymmetric(a, b, tol):
    r1 = classify_bandwidth(a, b, tol)
    r2 = classify_bandwidth(b, a, tol)
    assert r1 in BwEquality
    if r1 is BwEquality.LESSER:
        assert r2 is BwEquality.GREATER
    elif r1 is BwEquality.GREATER:
        assert r2 is BwEquality.LESSER
    else:
        assert r2 is BwEquality.EQUAL


# ----------------------------------------------------------------------
# Demand/supply invariants over random controller inputs
# ----------------------------------------------------------------------
@st.composite
def demand_inputs(draw):
    tree = draw(random_trees(max_nodes=16))
    reports = {}
    losses = {}
    for leaf in tree.leaves:
        level = draw(st.integers(min_value=1, max_value=6))
        loss = draw(st.floats(min_value=0.0, max_value=1.0))
        reports[leaf] = ReceiverReport(
            receiver_id=tree.receivers[leaf],
            loss_rate=loss,
            bytes=draw(st.floats(min_value=0.0, max_value=1e6)),
            level=level,
        )
        losses[leaf] = loss
    return tree, reports, losses


@given(demand_inputs())
@settings(max_examples=50, deadline=None)
def test_demand_and_supply_invariants(inp):
    tree, reports, leaf_losses = inp
    cfg = TopoSenseConfig()
    state = ControllerState()
    rng = np.random.default_rng(0)
    loss = compute_loss_rates(tree, leaf_losses)
    congestion = compute_congestion(tree, loss, cfg)
    node_bytes = compute_subtree_bytes(
        tree, {l: r.bytes for l, r in reports.items()}
    )
    res = compute_demands(
        tree, PAPER_SCHEDULE, reports, loss, congestion, node_bytes,
        state, cfg, 100.0, rng,
    )
    base = PAPER_SCHEDULE.cumulative(cfg.min_level)
    top = PAPER_SCHEDULE.cumulative(6)
    for node in tree.nodes:
        # Demand is always within [base layer, whole session].
        assert base <= res.demand[node] <= top + 1e-9
        # Internal demand never below any child's demand... it is the max
        # of children possibly reduced; but never *above* the max child.
        kids = tree.children.get(node)
        if kids:
            assert res.demand[node] <= max(res.demand[c] for c in kids) + 1e-9

    levels = allocate_supply(
        tree, PAPER_SCHEDULE, res.demand, lambda e: math.inf, {}, state, cfg
    )
    for leaf, level in levels.items():
        assert cfg.min_level <= level <= 6
        # Supply never exceeds demand at the leaf.
        assert PAPER_SCHEDULE.cumulative(level) <= res.demand[leaf] + 1e-9 or level == cfg.min_level


# ----------------------------------------------------------------------
# Capacity estimator invariants
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.floats(0, 1), st.floats(0, 1e6)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_capacity_estimator_never_negative_or_nan(observations):
    cfg = TopoSenseConfig()
    est = LinkCapacityEstimator(cfg)
    link = ("u", "v")
    for loss, bytes_ in observations:
        est.update({link: [LinkObservation(1, loss, bytes_)]}, interval=2.0)
        c = est.capacity(link)
        assert c > 0
        assert not math.isnan(c)


# ----------------------------------------------------------------------
# StepTrace invariants
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(st.floats(0.01, 10.0), st.integers(0, 6)),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=100, deadline=None)
def test_steptrace_segments_tile_window(increments):
    tr = StepTrace(0.0, 0)
    t = 0.0
    for dt, v in increments:
        t += dt
        tr.record(t, v)
    end = t + 1.0
    segs = list(tr.segments(0.0, end))
    assert segs[0][0] == 0.0
    assert segs[-1][1] == pytest.approx(end)
    for (a0, a1, _), (b0, b1, _) in zip(segs, segs[1:]):
        assert a1 == pytest.approx(b0)
    total = sum(s1 - s0 for s0, s1, _ in segs)
    assert total == pytest.approx(end)
    # value_at agrees with the covering segment.
    for s0, s1, v in segs:
        mid = (s0 + s1) / 2
        assert tr.value_at(mid) == v


@given(
    st.lists(
        st.tuples(st.floats(0.01, 5.0), st.integers(0, 6)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=100, deadline=None)
def test_steptrace_time_weighted_mean_bounded(increments):
    tr = StepTrace(0.0, 3)
    t = 0.0
    for dt, v in increments:
        t += dt
        tr.record(t, v)
    m = tr.time_weighted_mean(0.0, t + 1.0)
    values = set(tr.values)
    assert min(values) - 1e-9 <= m <= max(values) + 1e-9


# ----------------------------------------------------------------------
# Scheduler determinism / ordering under random loads
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0.0, 100.0), min_size=1, max_size=100))
@settings(max_examples=50, deadline=None)
def test_scheduler_processes_in_nondecreasing_time(times):
    sched = Scheduler()
    seen = []
    for t in times:
        sched.at(t, lambda t=t: seen.append(sched.now))
    sched.run(until=101.0)
    assert seen == sorted(seen)
    assert len(seen) == len(times)


# ----------------------------------------------------------------------
# LayerSchedule invariants
# ----------------------------------------------------------------------
@given(
    st.integers(1, 10),
    st.floats(1e3, 1e6),
    st.floats(1.1, 3.0),
    st.floats(0, 1e8),
)
@settings(max_examples=100, deadline=None)
def test_layer_schedule_max_level_consistent(n, base, growth, bw):
    s = LayerSchedule(n_layers=n, base_rate=base, growth=growth)
    k = s.max_level_for(bw)
    assert 0 <= k <= n
    if k > 0:
        assert s.cumulative(k) <= bw
    if k < n:
        assert s.cumulative(k + 1) > bw
