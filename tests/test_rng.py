"""Unit tests for the seeded RNG registry."""

from repro.simnet.rng import RngRegistry


def test_same_name_returns_same_generator():
    reg = RngRegistry(seed=7)
    assert reg.fork("a") is reg.fork("a")


def test_distinct_names_give_distinct_streams():
    reg = RngRegistry(seed=7)
    a = reg.fork("a").random(10)
    b = reg.fork("b").random(10)
    assert not (a == b).all()


def test_same_seed_reproduces_streams():
    x = RngRegistry(seed=3).fork("vbr/0").random(20)
    y = RngRegistry(seed=3).fork("vbr/0").random(20)
    assert (x == y).all()


def test_different_seeds_differ():
    x = RngRegistry(seed=3).fork("vbr/0").random(20)
    y = RngRegistry(seed=4).fork("vbr/0").random(20)
    assert not (x == y).all()


def test_adding_stream_does_not_perturb_existing():
    """Name-based forking: creation order must not matter."""
    reg1 = RngRegistry(seed=9)
    reg1.fork("first")
    a1 = reg1.fork("target").random(10)

    reg2 = RngRegistry(seed=9)
    a2 = reg2.fork("target").random(10)  # created without "first"
    assert (a1 == a2).all()


def test_none_seed_defaults_to_zero():
    assert RngRegistry(None).seed == 0


def test_names_listing():
    reg = RngRegistry(seed=1)
    reg.fork("b")
    reg.fork("a")
    assert reg.names() == ["a", "b"]
