"""Unit tests for the layered receiver (loss detection, reporting)."""

import pytest

from repro.media.layers import LayerSchedule
from repro.media.receiver import IntervalStats, LayeredReceiver
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.packet import Packet
from repro.simnet.topology import Network


def setup(n_layers=3, initial_level=0):
    sched = Scheduler()
    net = Network(sched)
    net.add_node("src")
    net.add_node("rcv")
    net.add_link("src", "rcv", bandwidth=10e6, delay=0.01)
    net.build_routes()
    mcast = MulticastManager(net, leave_latency=0.1, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = [mcast.create_group("src") for _ in range(n_layers)]
    rcv = LayeredReceiver(
        net.node("rcv"), 1, groups, schedule, mcast, initial_level=initial_level
    )
    return sched, net, mcast, groups, rcv


def send(net, group, seq, layer=1, size=1000):
    net.node("src").send(
        Packet(src="src", group=group, seq=seq, session=1, layer=layer, size=size)
    )


def test_initial_level_joins_groups():
    sched, net, mcast, groups, rcv = setup(initial_level=2)
    sched.run(until=1.0)
    assert mcast.members(groups[0]) == frozenset({"rcv"})
    assert mcast.members(groups[1]) == frozenset({"rcv"})
    assert mcast.members(groups[2]) == frozenset()
    assert rcv.level == 2


def test_set_level_up_and_down():
    sched, net, mcast, groups, rcv = setup()
    rcv.set_level(3)
    sched.run(until=1.0)
    assert all(mcast.members(g) == frozenset({"rcv"}) for g in groups)
    rcv.set_level(1)
    sched.run(until=2.0)
    assert mcast.members(groups[0]) == frozenset({"rcv"})
    assert mcast.members(groups[1]) == frozenset()
    assert mcast.members(groups[2]) == frozenset()


def test_set_level_same_is_noop():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    trace_len = len(rcv.trace)
    rcv.set_level(1)
    assert len(rcv.trace) == trace_len


def test_level_validation():
    sched, net, mcast, groups, rcv = setup()
    with pytest.raises(ValueError):
        rcv.set_level(-1)
    with pytest.raises(ValueError):
        rcv.set_level(4)


def test_add_drop_layer_helpers():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    assert rcv.add_layer() is True
    assert rcv.level == 2
    rcv.set_level(3)
    assert rcv.add_layer() is False
    assert rcv.drop_layer() is True
    assert rcv.level == 2
    rcv.set_level(0)
    assert rcv.drop_layer() is False


def test_packets_counted():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    for seq in range(5):
        send(net, groups[0], seq)
    sched.run(until=2.0)
    stats = rcv.interval_stats()
    assert stats.received == 5
    assert stats.lost == 0
    assert stats.bytes == 5000
    assert stats.loss_rate == 0.0


def test_gap_detection():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    for seq in [0, 1, 4, 5, 9]:  # gaps: 2,3 and 6,7,8 -> 5 lost
        send(net, groups[0], seq)
    sched.run(until=2.0)
    stats = rcv.interval_stats()
    assert stats.received == 5
    assert stats.lost == 5
    assert stats.loss_rate == pytest.approx(0.5)


def test_first_packet_sets_baseline():
    """Joining mid-stream must not count the missed prefix as loss."""
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    send(net, groups[0], 1000)
    send(net, groups[0], 1001)
    sched.run(until=2.0)
    stats = rcv.interval_stats()
    assert stats.received == 2
    assert stats.lost == 0


def test_interval_stats_resets_counters():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    send(net, groups[0], 0)
    sched.run(until=2.0)
    first = rcv.interval_stats()
    assert first.received == 1
    second = rcv.interval_stats()
    assert second.received == 0
    assert second.bytes == 0


def test_silence_detected_as_loss():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    rcv.interval_stats()  # open a fresh interval at t=1
    sched.run(until=11.0)  # 10 s of silence while subscribed
    stats = rcv.interval_stats()
    assert stats.received == 0
    # Base layer at 32 Kb/s = 4 pkt/s -> ~40 packets presumed lost.
    assert stats.lost == pytest.approx(40.0)
    assert stats.loss_rate == 1.0


def test_no_silence_loss_when_just_joined():
    """A layer joined mid-interval must not be silence-penalized."""
    sched, net, mcast, groups, rcv = setup(initial_level=0)
    sched.run(until=1.0)
    rcv.interval_stats()
    sched.run(until=5.0)
    rcv.set_level(1)  # joined at t=5, interval started at t=1
    sched.run(until=6.0)
    stats = rcv.interval_stats()
    assert stats.lost == 0


def test_rejoin_resets_sequence_tracking():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    send(net, groups[0], 10)
    sched.run(until=2.0)
    rcv.set_level(0)
    sched.run(until=3.0)
    rcv.set_level(1)
    sched.run(until=4.0)
    rcv.interval_stats()
    send(net, groups[0], 500)  # big jump across the unsubscribed span
    sched.run(until=5.0)
    stats = rcv.interval_stats()
    assert stats.lost == 0
    assert stats.received == 1


def test_multi_layer_aggregation():
    sched, net, mcast, groups, rcv = setup(initial_level=2)
    sched.run(until=1.0)
    rcv.interval_stats()
    send(net, groups[0], 0, layer=1)
    send(net, groups[1], 0, layer=2)
    send(net, groups[1], 2, layer=2)  # one lost on layer 2
    sched.run(until=2.0)
    stats = rcv.interval_stats()
    assert stats.received == 3
    assert stats.lost == 1
    assert stats.bytes == 3000


def test_trace_records_level_changes():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=10.0)
    rcv.set_level(2)
    sched.run(until=20.0)
    rcv.set_level(1)
    assert rcv.trace.value_at(5.0) == 1
    assert rcv.trace.value_at(15.0) == 2
    assert rcv.trace.value_at(25.0) == 1
    # The creation-time 0->1 collapses into the initial point; two changes remain.
    assert rcv.trace.num_changes() == 2


def test_bandwidth_property():
    stats = IntervalStats(t0=0.0, t1=2.0, bytes_=4000, received=4, lost=0.0, level=1)
    assert stats.bandwidth == pytest.approx(16_000.0)
    empty = IntervalStats(0.0, 0.0, 0, 0, 0.0, 0)
    assert empty.bandwidth == 0.0
    assert empty.loss_rate == 0.0


def test_group_count_mismatch_rejected():
    sched = Scheduler()
    net = Network(sched)
    net.add_node("rcv")
    mcast = MulticastManager(net)
    schedule = LayerSchedule(n_layers=3)
    with pytest.raises(ValueError):
        LayeredReceiver(net.node("rcv"), 1, [1, 2], schedule, mcast)


def test_initial_level_out_of_range():
    sched = Scheduler()
    net = Network(sched)
    net.add_node("rcv")
    mcast = MulticastManager(net)
    schedule = LayerSchedule(n_layers=2)
    groups = [mcast.create_group("rcv"), mcast.create_group("rcv")]
    with pytest.raises(ValueError):
        LayeredReceiver(net.node("rcv"), 1, groups, schedule, mcast, initial_level=5)


def test_loss_series_recorded():
    sched, net, mcast, groups, rcv = setup(initial_level=1)
    sched.run(until=1.0)
    rcv.interval_stats()
    sched.run(until=2.0)
    rcv.interval_stats()
    assert len(rcv.loss_series) == 2
