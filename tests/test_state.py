"""Unit tests for the persistent controller state."""

from repro.core.state import ControllerState, NodeState


class TestNodeState:
    def test_history_bits_empty_history(self):
        ns = NodeState()
        assert ns.history_bits(False) == 0
        assert ns.history_bits(True) == 1

    def test_history_bits_after_pushes(self):
        ns = NodeState()
        ns.push_congestion(True)   # becomes T1 next interval
        assert ns.history_bits(True) == 0b011
        ns.push_congestion(False)
        # window is now [True, False] = T0, T1
        assert ns.history_bits(True) == 0b101
        assert ns.history_bits(False) == 0b100

    def test_history_window_bounded(self):
        ns = NodeState()
        for state in (True, True, True, False, False):
            ns.push_congestion(state)
        assert ns.cong_hist == [False, False]
        assert ns.history_bits(True) == 0b001

    def test_bytes_history(self):
        ns = NodeState()
        assert ns.prev_bytes is None
        ns.push_bytes(100.0)
        assert ns.prev_bytes == 100.0
        ns.push_bytes(250.0)
        assert ns.prev_bytes == 250.0
        assert len(ns.bytes_hist) == 1

    def test_supply_history(self):
        ns = NodeState()
        assert ns.supply_old is None
        assert ns.supply_recent is None
        ns.push_supply(100.0)
        assert ns.supply_old is None  # need two entries for "old"
        assert ns.supply_recent == 100.0
        ns.push_supply(200.0)
        assert ns.supply_old == 100.0
        assert ns.supply_recent == 200.0
        ns.push_supply(300.0)
        assert ns.supply_old == 200.0
        assert ns.supply_recent == 300.0


class TestControllerState:
    def test_node_created_on_demand_and_cached(self):
        st = ControllerState()
        a = st.node("s1", "n1")
        assert st.node("s1", "n1") is a
        assert st.node("s1", "n2") is not a
        assert st.node("s2", "n1") is not a

    def test_backoff_blocks_layer_in_window(self):
        st = ControllerState()
        st.set_backoff("s", "n", 4, expiry=100.0)
        assert st.is_backed_off("s", ["n"], 4, now=50.0)
        assert not st.is_backed_off("s", ["n"], 4, now=100.0)
        assert not st.is_backed_off("s", ["n"], 3, now=50.0)
        assert not st.is_backed_off("s", ["other"], 4, now=50.0)
        assert not st.is_backed_off("other", ["n"], 4, now=50.0)

    def test_backoff_checked_along_path(self):
        st = ControllerState()
        st.set_backoff("s", "mid", 5, expiry=100.0)
        # A leaf whose root-path includes "mid" is blocked.
        assert st.is_backed_off("s", ["root", "mid", "leaf"], 5, now=10.0)
        assert not st.is_backed_off("s", ["root", "leaf2"], 5, now=10.0)

    def test_backoff_never_shortens(self):
        st = ControllerState()
        st.set_backoff("s", "n", 4, expiry=100.0)
        st.set_backoff("s", "n", 4, expiry=50.0)
        assert st.is_backed_off("s", ["n"], 4, now=75.0)

    def test_backoff_extends(self):
        st = ControllerState()
        st.set_backoff("s", "n", 4, expiry=50.0)
        st.set_backoff("s", "n", 4, expiry=100.0)
        assert st.is_backed_off("s", ["n"], 4, now=75.0)

    def test_prune_removes_expired_only(self):
        st = ControllerState()
        st.set_backoff("s", "a", 1, expiry=10.0)
        st.set_backoff("s", "b", 1, expiry=100.0)
        st.prune_backoffs(now=50.0)
        assert st.active_backoffs == 1
        assert st.is_backed_off("s", ["b"], 1, now=50.0)
