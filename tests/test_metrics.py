"""Unit tests for the evaluation metrics."""


import pytest

from repro.metrics.deviation import mean_relative_deviation, relative_deviation
from repro.metrics.fairness import bandwidth_shares, jain_index
from repro.metrics.stability import subscription_changes, worst_receiver_stability
from repro.simnet.tracing import StepTrace


def trace(points, t0=0.0, v0=0):
    tr = StepTrace(t0, v0)
    for t, v in points:
        tr.record(t, v)
    return tr


class TestRelativeDeviation:
    def test_perfect_subscription_zero_deviation(self):
        tr = trace([], v0=4)
        assert relative_deviation(tr, 4, 0.0, 100.0) == 0.0

    def test_constant_offset(self):
        tr = trace([], v0=3)  # always one below optimal 4
        assert relative_deviation(tr, 4, 0.0, 100.0) == pytest.approx(0.25)

    def test_paper_formula_time_weighting(self):
        # Half the window at 4 (optimal), half at 2: |2-4|*50 / (4*100) = 0.25
        tr = trace([(50.0, 2)], v0=4)
        assert relative_deviation(tr, 4, 0.0, 100.0) == pytest.approx(0.25)

    def test_overshoot_counts_as_deviation(self):
        tr = trace([], v0=6)
        assert relative_deviation(tr, 4, 0.0, 100.0) == pytest.approx(0.5)

    def test_window_selects_segment(self):
        tr = trace([(50.0, 2)], v0=4)
        assert relative_deviation(tr, 4, 0.0, 50.0) == 0.0
        assert relative_deviation(tr, 4, 50.0, 100.0) == pytest.approx(0.5)

    def test_invalid_window(self):
        tr = trace([], v0=4)
        with pytest.raises(ValueError):
            relative_deviation(tr, 4, 10.0, 10.0)

    def test_invalid_optimal(self):
        tr = trace([], v0=4)
        with pytest.raises(ValueError):
            relative_deviation(tr, 0, 0.0, 10.0)

    def test_mean_over_receivers(self):
        t1 = trace([], v0=4)
        t2 = trace([], v0=2)
        m = mean_relative_deviation([(t1, 4.0), (t2, 4.0)], 0.0, 10.0)
        assert m == pytest.approx(0.25)

    def test_mean_requires_receivers(self):
        with pytest.raises(ValueError):
            mean_relative_deviation([], 0.0, 10.0)


class TestStability:
    def test_change_count(self):
        tr = trace([(10.0, 2), (20.0, 3), (30.0, 2)], v0=1)
        assert subscription_changes(tr, 0.0, 100.0) == 3
        assert subscription_changes(tr, 15.0, 100.0) == 2

    def test_worst_receiver(self):
        quiet = trace([(10.0, 2)], v0=1)
        busy = trace([(10.0, 2), (20.0, 1), (30.0, 2)], v0=1)
        count, gap = worst_receiver_stability([quiet, busy], 0.0, 100.0)
        assert count == 3
        assert gap == pytest.approx(10.0)

    def test_worst_receiver_empty(self):
        with pytest.raises(ValueError):
            worst_receiver_stability([], 0.0, 100.0)

    def test_stable_trace_gap_is_window(self):
        tr = trace([], v0=4)
        count, gap = worst_receiver_stability([tr], 0.0, 1200.0)
        assert count == 0
        assert gap == pytest.approx(1200.0)


class TestFairness:
    def test_jain_perfectly_fair(self):
        assert jain_index([1.0, 1.0, 1.0, 1.0]) == pytest.approx(1.0)

    def test_jain_maximally_unfair(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_jain_intermediate(self):
        v = jain_index([1.0, 2.0])
        assert 0.5 < v < 1.0
        assert v == pytest.approx(9 / 10)

    def test_jain_all_zero(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_jain_validation(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    def test_bandwidth_shares(self):
        shares = bandwidth_shares([100.0, 300.0])
        assert shares == pytest.approx([0.25, 0.75])
        assert shares.sum() == pytest.approx(1.0)

    def test_bandwidth_shares_zero_total(self):
        with pytest.raises(ValueError):
            bandwidth_shares([0.0, 0.0])
