"""Unit tests for the expedited group-leave extension (paper §V)."""

import pytest

from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def network():
    r"""src - core - {a, b}, 100 ms links."""
    sched = Scheduler()
    net = Network(sched)
    for n in ["src", "core", "a", "b"]:
        net.add_node(n)
    net.add_link("src", "core", bandwidth=1e6, delay=0.1)
    net.add_link("core", "a", bandwidth=1e6, delay=0.1)
    net.add_link("core", "b", bandwidth=1e6, delay=0.1)
    net.build_routes()
    return sched, net


def test_expedited_leave_is_much_faster_than_igmp():
    sched, net = network()
    m = MulticastManager(net, leave_latency=2.0, igmp_report_delay=0.0,
                         expedited_leave=True)
    g = m.create_group("src")
    m.join(g, "a")
    sched.run(until=1.0)
    eff = m.leave(g, "a")
    # Prune travels a -> core -> src: 0.2 s, far below the 2 s IGMP timeout.
    assert eff - sched.now == pytest.approx(0.2)
    sched.run(until=1.3)
    assert m.members(g) == frozenset()


def test_standard_leave_still_waits_full_latency():
    sched, net = network()
    m = MulticastManager(net, leave_latency=2.0, igmp_report_delay=0.0,
                         expedited_leave=False)
    g = m.create_group("src")
    m.join(g, "a")
    sched.run(until=1.0)
    eff = m.leave(g, "a")
    assert eff - sched.now == pytest.approx(2.0)


def test_expedited_prune_stops_at_branch_point():
    sched, net = network()
    m = MulticastManager(net, leave_latency=2.0, igmp_report_delay=0.0,
                         expedited_leave=True)
    g = m.create_group("src")
    m.join(g, "a")
    m.join(g, "b")
    sched.run(until=1.0)
    # b's prune only needs to reach core (a is still downstream of core).
    eff = m.leave(g, "b")
    assert eff - sched.now == pytest.approx(0.1)
    sched.run(until=2.0)
    assert m.members(g) == frozenset({"a"})
    assert m.tree_edges(g) == frozenset({("src", "core"), ("core", "a")})


def test_expedited_leave_of_nonmember_is_fast_noop():
    sched, net = network()
    m = MulticastManager(net, leave_latency=2.0, igmp_report_delay=0.01,
                         expedited_leave=True)
    g = m.create_group("src")
    eff = m.leave(g, "a")
    assert eff - sched.now == pytest.approx(0.01)
    sched.run(until=1.0)
    assert m.members(g) == frozenset()


def test_expedited_rejoin_race_still_resolves_to_latest():
    sched, net = network()
    m = MulticastManager(net, leave_latency=2.0, igmp_report_delay=0.0,
                         expedited_leave=True)
    g = m.create_group("src")
    m.join(g, "a")
    sched.run(until=1.0)
    m.leave(g, "a")
    m.join(g, "a")  # immediately rejoin
    sched.run(until=3.0)
    assert m.members(g) == frozenset({"a"})
