"""Unit tests for SessionTree."""

import pytest

from repro.core.session_topology import SessionTree


def paper_tree():
    r"""The tree from the paper's Fig. 1:

            1 (source)
           / \
          2   5
         / \   \
        3   4   6
    """
    edges = [(1, 2), (2, 3), (2, 4), (1, 5), (5, 6)]
    receivers = {3: "r3", 4: "r4", 6: "r6"}
    return SessionTree("s", 1, edges, receivers)


def test_parent_child_maps():
    t = paper_tree()
    assert t.parent[3] == 2
    assert t.parent[2] == 1
    assert 1 not in t.parent
    assert set(t.children[1]) == {2, 5}
    assert set(t.children[2]) == {3, 4}


def test_topdown_parents_first():
    t = paper_tree()
    order = t.topdown()
    pos = {n: i for i, n in enumerate(order)}
    for child, parent in t.parent.items():
        assert pos[parent] < pos[child]


def test_bottomup_children_first():
    t = paper_tree()
    order = t.bottomup()
    pos = {n: i for i, n in enumerate(order)}
    for child, parent in t.parent.items():
        assert pos[child] < pos[parent]


def test_leaves():
    t = paper_tree()
    assert set(t.leaves) == {3, 4, 6}
    assert t.is_leaf(3)
    assert not t.is_leaf(2)


def test_incoming_edge():
    t = paper_tree()
    assert t.incoming_edge(3) == (2, 3)
    assert t.incoming_edge(1) is None


def test_path_from_root():
    t = paper_tree()
    assert t.path_from_root(3) == [1, 2, 3]
    assert t.path_from_root(1) == [1]
    assert t.path_from_root(6) == [1, 5, 6]


def test_subtree_leaves():
    t = paper_tree()
    assert set(t.subtree_leaves(2)) == {3, 4}
    assert set(t.subtree_leaves(1)) == {3, 4, 6}
    assert t.subtree_leaves(6) == [6]


def test_two_parents_rejected():
    with pytest.raises(ValueError, match="two parents"):
        SessionTree("s", 1, [(1, 2), (1, 3), (3, 2)], {})


def test_root_with_parent_rejected():
    with pytest.raises(ValueError, match="root cannot have a parent"):
        SessionTree("s", 1, [(2, 1)], {})


def test_disconnected_rejected():
    with pytest.raises(ValueError, match="not reachable"):
        SessionTree("s", 1, [(1, 2), (3, 4)], {})


def test_receiver_on_unknown_node_rejected():
    with pytest.raises(ValueError, match="unknown nodes"):
        SessionTree("s", 1, [(1, 2)], {99: "r"})


def test_single_node_tree():
    t = SessionTree("s", 1, [], {1: "r"})
    assert t.leaves == (1,)
    assert t.topdown() == (1,)
    assert t.is_leaf(1)


def test_receiver_on_internal_node_allowed():
    # A receiver can sit at an interior router (host co-located).
    t = SessionTree("s", 1, [(1, 2), (2, 3)], {2: "mid", 3: "leaf"})
    assert t.receivers == {2: "mid", 3: "leaf"}


def test_from_layer_snapshots_overlay():
    # Layer 1 reaches both subtrees, layer 2 only node 4.
    l1 = [(1, 2), (2, 3), (2, 4)]
    l2 = [(1, 2), (2, 4)]
    t = SessionTree.from_layer_snapshots("s", 1, [l1, l2], {3: "r3", 4: "r4"})
    assert t.edges == frozenset(l1)
    assert t.layers_on_edge[(2, 4)] == 2
    assert t.layers_on_edge[(2, 3)] == 1
    assert t.layers_on_edge[(1, 2)] == 2


def test_layers_on_edge_unknown_edges_rejected():
    with pytest.raises(ValueError, match="unknown edges"):
        SessionTree("s", 1, [(1, 2)], {}, layers_on_edge={(9, 9): 1})


def test_children_order_deterministic():
    t1 = SessionTree("s", 1, [(1, 3), (1, 2)], {})
    t2 = SessionTree("s", 1, [(1, 2), (1, 3)], {})
    assert t1.children[1] == t2.children[1]
