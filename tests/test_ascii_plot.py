"""Unit tests for the terminal plot helpers."""

import pytest

from repro.metrics.ascii_plot import (
    render_histogram,
    render_level_timeline,
    render_series,
)
from repro.simnet.tracing import SeriesTrace, StepTrace


class TestLevelTimeline:
    def test_constant_trace(self):
        tr = StepTrace(0.0, 4)
        assert render_level_timeline(tr, 0.0, 10.0, width=10) == "4444444444"

    def test_step_change(self):
        tr = StepTrace(0.0, 1)
        tr.record(5.0, 4)
        assert render_level_timeline(tr, 0.0, 10.0, width=10) == "1111144444"

    def test_label_prefix(self):
        tr = StepTrace(0.0, 2)
        out = render_level_timeline(tr, 0.0, 4.0, width=4, label="rx0 ")
        assert out == "rx0 2222"

    def test_levels_above_nine_rendered_as_hash(self):
        tr = StepTrace(0.0, 12)
        assert render_level_timeline(tr, 0.0, 2.0, width=2) == "##"

    def test_validation(self):
        tr = StepTrace(0.0, 1)
        with pytest.raises(ValueError):
            render_level_timeline(tr, 5.0, 5.0)
        with pytest.raises(ValueError):
            render_level_timeline(tr, 0.0, 5.0, width=0)

    def test_empty_trace_renders_initial_value(self):
        # A trace with no recorded changes holds its initial value forever.
        tr = StepTrace(0.0, 0)
        assert render_level_timeline(tr, 0.0, 5.0, width=5) == "00000"

    def test_single_change_trace(self):
        tr = StepTrace(0.0, 0)
        tr.record(9.0, 7)
        out = render_level_timeline(tr, 0.0, 10.0, width=10)
        assert out == "0000000007"


class TestSeries:
    def test_bar_heights_scale(self):
        s = SeriesTrace()
        for t in range(10):
            s.record(float(t), 0.0 if t < 5 else 1.0)
        out = render_series(s, 0.0, 10.0, width=10, height=4)
        rows = out.splitlines()
        assert len(rows) == 4
        # Right half (high values) filled on every row; left half empty on top.
        assert rows[0][:5].strip() == ""
        assert rows[0][5:].count("|") == 5

    def test_empty_buckets_render_blank(self):
        s = SeriesTrace()
        s.record(9.5, 1.0)
        out = render_series(s, 0.0, 10.0, width=10, height=2)
        assert "|" in out.splitlines()[-1]

    def test_label_and_max(self):
        s = SeriesTrace()
        s.record(0.0, 0.5)
        out = render_series(s, 0.0, 1.0, width=2, height=2, max_value=1.0, label="loss")
        assert out.startswith("loss (max 1.00)")

    def test_validation(self):
        s = SeriesTrace()
        with pytest.raises(ValueError):
            render_series(s, 1.0, 1.0)
        with pytest.raises(ValueError):
            render_series(s, 0.0, 1.0, height=0)

    def test_empty_series_renders_blank_grid(self):
        out = render_series(SeriesTrace(), 0.0, 10.0, width=8, height=3)
        rows = out.splitlines()
        assert len(rows) == 3
        assert all(row == " " * 8 for row in rows)

    def test_single_point_series(self):
        s = SeriesTrace()
        s.record(5.5, 2.0)  # mid-bucket: edge samples land in two buckets
        out = render_series(s, 0.0, 10.0, width=10, height=2)
        rows = out.splitlines()
        # Exactly one column filled, and it reaches the top row.
        assert rows[0].count("|") == 1
        assert rows[0].index("|") == 5

    def test_constant_series_fills_every_column(self):
        s = SeriesTrace()
        for t in range(10):
            s.record(float(t), 3.0)
        out = render_series(s, 0.0, 10.0, width=10, height=3)
        rows = out.splitlines()
        # A flat non-zero series is its own maximum: full columns everywhere.
        assert all(row == "|" * 10 for row in rows)

    def test_constant_zero_series_is_blank(self):
        s = SeriesTrace()
        for t in range(5):
            s.record(float(t), 0.0)
        out = render_series(s, 0.0, 5.0, width=5, height=2)
        assert all(row == " " * 5 for row in out.splitlines())


class TestHistogram:
    def test_counts_in_bins(self):
        out = render_histogram([0.1, 0.2, 0.8], bins=[0.0, 0.5, 1.0], width=4)
        lines = out.splitlines()
        assert lines[0].endswith("2")
        assert lines[1].endswith("1")

    def test_top_edge_included(self):
        out = render_histogram([1.0], bins=[0.0, 0.5, 1.0])
        assert out.splitlines()[1].endswith("1")

    def test_validation(self):
        with pytest.raises(ValueError):
            render_histogram([1.0], bins=[0.0])


def test_cli_fig9_plot(capsys):
    from repro.cli import main

    assert main(["fig9", "--duration", "40", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "subscription level per session" in out
    # Timeline rows contain digit runs.
    assert any(c.isdigit() for c in out.splitlines()[-1])
