"""Tests for partition-tolerant federation (DESIGN.md §14).

Covers the seeded inter-domain channel (loss/delay/duplication,
partitions), coordinator round fencing and failover epochs, shard-side
retry/timeout and bounded-staleness decay, the controller's session
ceiling clamp, the ``fed_*`` fault-plan builders, and a small end-to-end
``run_fedchaos`` point.
"""

import json

import pytest

from repro.control.messages import FederationAdvice, Report, SubtreeSummary
from repro.faults import FaultPlan
from repro.faults.injectors import FederationInjector
from repro.federation import (
    ChannelImpairment,
    DomainShard,
    FederatedSession,
    FederationCoordinator,
    InterDomainChannel,
    build_federated_views,
    channel_seed,
    default_fedchaos_plan,
    run_fedchaos,
)


def _views(n_domains=2, receivers_per_domain=2, seed=0):
    return build_federated_views(n_domains, receivers_per_domain, seed=seed)


def _summary(domain="d1", session_id="s0", round_no=0, now=4.0):
    return SubtreeSummary(
        domain=domain, session_id=session_id, gateway=f"gw-{domain}",
        receiver_count=2, mean_loss=0.01, max_loss=0.05,
        min_level=1, max_level=3, level_sum=6, bottleneck_bps=2e5,
        issued_at=now, round=round_no,
    )


def _advice(session_id="s0", ceiling=4, epoch=0, round_no=0):
    return FederationAdvice(
        session_id=session_id, ceiling=ceiling, floor=1, receiver_count=4,
        bottleneck_bps=1e5, issued_at=4.0, epoch=epoch, round=round_no,
    )


# ----------------------------------------------------------------------
# Channel
# ----------------------------------------------------------------------


class TestChannel:
    def test_seed_stable_and_per_domain_direction(self):
        assert channel_seed(1, "d1", "up") == channel_seed(1, "d1", "up")
        assert channel_seed(1, "d1", "up") != channel_seed(1, "d2", "up")
        assert channel_seed(1, "d1", "up") != channel_seed(1, "d1", "down")
        assert channel_seed(1, "d1", "up") != channel_seed(2, "d1", "up")

    def test_impairment_validation(self):
        with pytest.raises(ValueError, match="loss"):
            ChannelImpairment(loss=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            ChannelImpairment(duplicate=-0.1)
        with pytest.raises(ValueError, match="delay_rounds"):
            ChannelImpairment(delay_rounds=-1)
        assert ChannelImpairment().perfect
        assert not ChannelImpairment(loss=0.5).perfect

    def test_perfect_channel_always_delivers(self):
        ch = InterDomainChannel(seed=1)
        for r in range(5):
            assert ch.send_up("d1", _summary(), r) == "delivered"
        assert ch.stats["up_delivered"] == 5 and ch.stats["up_lost"] == 0
        assert ch.in_flight() == 0

    def test_loss_is_seeded_and_deterministic(self):
        outcomes = []
        for _ in range(2):
            ch = InterDomainChannel(seed=3)
            ch.set_impairment(loss=0.5)
            outcomes.append([
                ch.send_up("d1", _summary(), r) for r in range(40)
            ])
        assert outcomes[0] == outcomes[1]
        assert "lost" in outcomes[0] and "delivered" in outcomes[0]

    def test_delay_queues_and_due_drains_in_order(self):
        ch = InterDomainChannel(seed=2)
        ch.set_impairment(delay_rounds=2)
        sent = [_summary(round_no=r) for r in range(30)]
        delayed = [
            m for m in sent if ch.send_up("d1", m, 1) == "delayed"
        ]
        assert delayed, "delay_rounds=2 never delayed in 30 sends"
        assert ch.in_flight() == len(delayed)
        drained = []
        for r in range(2, 5):
            drained.extend(msg for _dir, _dom, msg in ch.due(r))
        # every delayed copy resurfaces exactly once (order is by due round)
        assert sorted(m.round for m in drained) == sorted(
            m.round for m in delayed
        )
        assert ch.in_flight() == 0

    def test_duplicate_delivers_now_and_queues_copy(self):
        ch = InterDomainChannel(seed=1)
        ch.set_impairment(duplicate=1.0)
        msg = _summary(round_no=1)
        assert ch.send_up("d1", msg, 1) == "delivered"
        assert ch.stats["up_duplicated"] == 1
        (dup,) = ch.due(2)
        assert dup == ("up", "d1", msg)

    def test_partition_drops_both_new_and_in_flight(self):
        ch = InterDomainChannel(seed=1)
        ch.set_impairment(delay_rounds=3)
        while ch.send_down("d2", _advice(), 1) != "delayed":
            pass
        ch.partition("d2")
        assert ch.send_up("d2", _summary("d2"), 2) == "lost"
        assert ch.stats["up_partitioned"] == 1
        # the delayed advice was in flight across the cut: dropped on due
        assert ch.due(10) == []
        ch.heal("d2")
        assert ch.send_up("d2", _summary("d2"), 11) in (
            "delivered", "delayed"
        )

    def test_per_domain_override_and_clear(self):
        ch = InterDomainChannel(seed=1)
        ch.set_impairment(loss=0.9)
        ch.set_impairment(domain="d1")  # d1 override: perfect
        assert ch.impairment_for("d1").perfect
        assert ch.impairment_for("d2").loss == 0.9
        ch.clear_impairment()  # global clear wipes overrides too
        assert ch.impairment_for("d2").perfect
        assert ch.summary()["partitioned"] == []


# ----------------------------------------------------------------------
# Coordinator fencing + failover
# ----------------------------------------------------------------------


class TestCoordinatorFencing:
    def test_stale_round_dropped_and_counted_separately(self):
        coord = FederationCoordinator()
        assert coord.receive(_summary(round_no=2)) is True
        assert coord.receive(_summary(round_no=2)) is False  # retry dup
        assert coord.receive(_summary(round_no=1)) is False  # delayed copy
        assert coord.receive(_summary(round_no=3)) is True
        assert coord.stale_rejected == 2 and coord.type_rejected == 0
        with pytest.raises(TypeError):
            coord.receive(Report(receiver_id="R0", session_id="s0",
                                 loss_rate=0.1, bytes=1e4, level=2,
                                 t0=0.0, t1=4.0))
        assert coord.type_rejected == 1
        assert coord.rejected_messages == 3  # legacy aggregate view

    def test_unsequenced_legacy_summaries_never_fenced(self):
        coord = FederationCoordinator()
        for _ in range(3):
            assert coord.receive(_summary(round_no=0)) is True
        assert coord.stale_rejected == 0

    def test_merge_stamps_epoch_and_round(self):
        coord = FederationCoordinator(epoch=4)
        coord.receive(_summary(round_no=1))
        (advice,) = coord.merge(now=8.0, round_no=7)
        assert advice.epoch == 4 and advice.round == 7

    def test_merge_is_order_independent(self):
        batches = [
            _summary("d1", round_no=1),
            _summary("d2", "s0", round_no=1),
            _summary("d1", "s1", round_no=1),
        ]
        results = []
        for order in (batches, list(reversed(batches))):
            coord = FederationCoordinator()
            for s in order:
                coord.receive(s)
            results.append(coord.merge(now=8.0, round_no=1))
        assert results[0] == results[1]

    def test_resume_from_replicated_store(self):
        old = FederationCoordinator(epoch=1)
        old.receive(_summary("d1"))
        old.receive(_summary("d2"))
        standby = FederationCoordinator(epoch=2)
        standby.resume_from(old.replicated_summaries())
        assert standby.tracked() == 2
        assert standby.peak_tracked == 2
        (advice,) = standby.merge(now=8.0, round_no=3)
        assert advice.epoch == 2 and advice.receiver_count == 4


# ----------------------------------------------------------------------
# Shard fencing, retries and bounded staleness
# ----------------------------------------------------------------------


class TestShardStaleness:
    def _shard(self, **kw):
        return DomainShard(_views()[0], seed=1, **kw)

    def test_deliver_advice_fences_epoch_and_round(self):
        shard = self._shard()
        assert shard.deliver_advice(_advice(epoch=2, round_no=5)) is True
        assert shard.advice_epoch == 2
        # deposed coordinator's epoch: rejected
        assert shard.deliver_advice(_advice(epoch=1, round_no=9)) is False
        # duplicate/older round at the same epoch: rejected
        assert shard.deliver_advice(_advice(epoch=2, round_no=5)) is False
        assert shard.deliver_advice(_advice(epoch=2, round_no=4)) is False
        # fresher round, and a newer epoch, both pass
        assert shard.deliver_advice(_advice(epoch=2, round_no=6)) is True
        assert shard.deliver_advice(_advice(epoch=3, round_no=1)) is True
        assert shard.stale_rejected == 3

    def test_legacy_unsequenced_advice_unfenced(self):
        shard = self._shard()
        assert shard.deliver_advice(_advice(epoch=0, round_no=0)) is True
        assert shard.deliver_advice(_advice(epoch=0, round_no=0)) is True
        assert shard.stale_rejected == 0

    def test_roll_staleness_decays_past_budget(self):
        shard = self._shard(staleness_budget=2, decay_floor=1)
        sid = shard.view.sessions[0].session_id
        shard.deliver_advice(_advice(session_id=sid, ceiling=4,
                                     epoch=1, round_no=1))
        # age 2 = within budget: no clamp
        shard.roll_staleness(round_no=3, now=12.0)
        assert sid not in shard.controller.session_ceilings
        assert shard.ceiling_log[-1]["effective_ceiling"] is None
        # age 4 = two rounds past budget: shed two layers
        shard.roll_staleness(round_no=5, now=20.0)
        assert shard.controller.session_ceilings[sid] == 2
        assert shard.decayed_rounds == 1
        # deep staleness bottoms out at the decay floor
        shard.roll_staleness(round_no=50, now=200.0)
        assert shard.controller.session_ceilings[sid] == 1
        # fresh advice clears the clamp
        shard.deliver_advice(_advice(session_id=sid, ceiling=4,
                                     epoch=1, round_no=50))
        shard.roll_staleness(round_no=51, now=204.0)
        assert sid not in shard.controller.session_ceilings

    def test_controller_honours_session_ceiling(self):
        shard = self._shard()
        sid = shard.view.sessions[0].session_id
        shard.controller.session_ceilings[sid] = 1
        shard.run_to(24.0)
        controller = shard.controller
        assert controller.suggestions_clamped > 0
        # _last_suggested holds what was actually sent, post-clamp
        assert all(
            lvl <= 1 for (s, _rid), lvl in controller._last_suggested.items()
            if s == sid
        )

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            self._shard(staleness_budget=-1)
        with pytest.raises(ValueError):
            self._shard(decay_floor=-1)


# ----------------------------------------------------------------------
# Federated session under faults
# ----------------------------------------------------------------------


class TestFederatedSessionFaults:
    def test_retries_and_timeouts_on_lossy_channel(self):
        ch = InterDomainChannel(seed=1)
        ch.set_impairment(loss=0.6)
        fed = FederatedSession(_views(seed=1), seed=1, cadence=4.0,
                               channel=ch, retry_limit=3)
        fed.run(32.0)
        retries = sum(s.summary_retries for s in fed.shards.values())
        assert retries > 0
        assert ch.stats["up_lost"] > 0
        # every retry is charged to the summary byte tier
        from repro.control.messages import SUMMARY_SIZE

        charged = sum(s.summary_bytes_sent for s in fed.shards.values())
        assert charged == ch.stats["up_sent"] * SUMMARY_SIZE

    def test_failover_bumps_epoch_and_fences_old_advice(self):
        fed = FederatedSession(_views(seed=1), seed=1, cadence=4.0,
                               channel=InterDomainChannel(seed=1))
        fed.run(8.0)
        old = fed.coordinator
        stored = old.tracked()
        fed.crash_coordinator()
        standby = fed.failover_coordinator()
        assert standby.epoch == old.epoch + 1
        assert standby.tracked() == stored  # warm start
        assert fed.coordinator_failovers == 1
        fed.run(8.0)
        for shard in fed.shards.values():
            assert shard.advice_epoch == standby.epoch
            # anything the deposed coordinator had in flight is rejected
            deposed = _advice(
                session_id=shard.view.sessions[0].session_id,
                epoch=old.epoch, round_no=99,
            )
            assert shard.deliver_advice(deposed) is False
        totals = fed.coordinator_totals()
        assert totals["generations"] == 2
        assert totals["epoch"] == standby.epoch

    def test_plan_rejects_non_federation_kinds(self):
        plan = FaultPlan().crash_node(4.0, "gw1")
        with pytest.raises(ValueError, match="fed_"):
            FederatedSession(_views(), seed=1, plan=plan)

    def test_plan_driven_faults_fire_at_round_barriers(self):
        plan = (FaultPlan()
                .degrade_federation(4.0, loss=0.9)
                .restore_federation(8.0)
                .kill_coordinator(12.0)
                .failover_coordinator(16.0))
        fed = FederatedSession(_views(seed=1), seed=1, cadence=4.0,
                               plan=plan)
        assert fed.channel is not None  # plan auto-attaches a channel
        fed.run(20.0)
        kinds = [kind for (_t, kind, _d) in fed.fault_log]
        assert kinds == ["fed_link_degrade", "fed_link_restore",
                         "fed_coordinator_kill", "fed_coordinator_failover"]
        assert fed.failover_rounds == [4]
        assert fed.coordinator.epoch == 2

    def test_emits_fault_topics(self):
        from repro.obs.bus import EventBus

        bus = EventBus()
        seen = set()
        for topic in ("federation.retry", "federation.timeout",
                      "federation.failover", "federation.stale"):
            bus.subscribe(topic, lambda ev: seen.add(ev.topic))
        plan = default_fedchaos_plan(cadence=4.0, loss=0.5, domain="d2")
        fed = FederatedSession(_views(3, seed=1), seed=1, cadence=4.0,
                               plan=plan, bus=bus, staleness_budget=1)
        fed.run(48.0)
        assert seen == {"federation.retry", "federation.timeout",
                        "federation.failover", "federation.stale"}

    def test_injector_rejects_foreign_kinds(self):
        fed = FederatedSession(_views(), seed=1,
                               channel=InterDomainChannel(seed=1))
        inj = FederationInjector(fed)
        with pytest.raises(ValueError, match="federation fault"):
            inj.execute("link_down", ("a", "b"), {})


# ----------------------------------------------------------------------
# Fault-plan builders
# ----------------------------------------------------------------------


class TestFedFaultPlan:
    def test_builders_round_trip_through_json(self):
        plan = default_fedchaos_plan()
        blob = json.dumps(plan.to_dicts())
        again = FaultPlan.from_dicts(json.loads(blob))
        assert again.to_dicts() == plan.to_dicts()
        kinds = {e.kind for e in plan.events}
        assert kinds == {"fed_link_degrade", "fed_partition", "fed_heal",
                         "fed_coordinator_kill", "fed_coordinator_failover"}

    def test_partition_window_orders_and_validates(self):
        plan = FaultPlan().partition_window(8.0, 16.0, "d2")
        assert [e.kind for e in plan.events] == ["fed_partition", "fed_heal"]
        with pytest.raises(ValueError):
            FaultPlan().partition_window(8.0, 8.0, "d2")

    def test_degrade_validates_rates(self):
        with pytest.raises(ValueError):
            FaultPlan().degrade_federation(4.0, loss=1.5)

    def test_clear_times_pair_fed_breakers(self):
        plan = (FaultPlan()
                .partition_window(4.0, 12.0, "d2")
                .kill_coordinator(8.0)
                .failover_coordinator(16.0))
        assert plan.clear_times() == [12.0, 16.0]

    def test_default_plan_validates_ordering(self):
        with pytest.raises(ValueError):
            default_fedchaos_plan(kill_round=9, failover_round=9)
        with pytest.raises(ValueError):
            default_fedchaos_plan(partition_rounds=0)


# ----------------------------------------------------------------------
# The fedchaos experiment
# ----------------------------------------------------------------------


class TestRunFedchaos:
    def test_single_point_passes_gates(self):
        result = run_fedchaos(
            seed=1, n_domains=2, receivers_per_domain=4,
            loss_rates=(0.2,), partition_rounds=(3,),
            check_parallel=True,
        )
        assert result["ok"], result["gates"]
        (point,) = result["points"]
        assert point["parallel_identical"] is True
        assert point["recovery"]["ok"] and point["overshoot"]["ok"]
        assert point["overshoot"]["checked"] > 0  # gate is non-vacuous
        assert point["faulted"]["coordinator"]["epoch"] == 2
        # the whole result is JSON-serialisable for CI round-trips
        json.dumps(result, default=str)

    def test_validation(self):
        with pytest.raises(ValueError, match="two domains"):
            run_fedchaos(n_domains=1)
        with pytest.raises(ValueError, match="partition_domain"):
            run_fedchaos(n_domains=2, partition_domain="d9",
                         check_parallel=False)
