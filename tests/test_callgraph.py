"""Interprocedural analysis: call graph, effects, R006/R007 fixtures.

The fixture matrix pins the exact finding count for every known-bad and
known-good fixture under ``tests/lint_fixtures/`` — one finding per
seeded defect, zero for the clean shard — and the unit tests cover the
call-graph mechanics the rules depend on: entry-point resolution,
reachability through helper frames, blame-path rendering, and the
closure-capture scoping that keeps nested callbacks from being
misread as module-global writers.
"""

from pathlib import Path

import pytest

from repro.analysis import (
    FileContext,
    Project,
    RngProvenanceRule,
    ShardIsolationRule,
    build_callgraph,
    get_callgraph,
    load_project,
    run_lint,
)
from repro.analysis.effects import bound_names, extract_effects
from repro.analysis.flow import ENTRY_POINTS

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def fixture_project(*names: str) -> Project:
    return Project([
        FileContext(
            f"src/repro/_fixture/{name[:-3]}.py",
            (FIXTURES / name).read_text(),
        )
        for name in names
    ])


def rule_findings(rule, *names: str):
    return run_lint(rules=[rule], project=fixture_project(*names)).findings


R006_MATRIX = [
    ("r006_bad_shared_write.py", 1),
    ("r006_bad_injected_write.py", 1),
    ("r006_good_shared_ok.py", 0),
    ("r006_bad_unused_shared_ok.py", 1),
    ("r006_r007_good_shard.py", 0),
]

R007_MATRIX = [
    ("r007_bad_rng_on_shared.py", 1),
    ("r007_bad_loop_reseed.py", 1),
    ("r007_bad_global_rng.py", 2),
    ("r007_bad_constant_seed.py", 1),
    ("r006_r007_good_shard.py", 0),
]


class TestR006Fixtures:
    @pytest.mark.parametrize("name,expected", R006_MATRIX)
    def test_expected_finding_count(self, name, expected):
        findings = rule_findings(ShardIsolationRule(), name)
        assert len(findings) == expected, [f.message for f in findings]
        assert all(f.code == "R006" for f in findings)

    def test_blame_path_names_the_entry_and_the_chain(self):
        (finding,) = rule_findings(
            ShardIsolationRule(), "r006_bad_shared_write.py"
        )
        # the write sits two helper frames below run_to; the finding must
        # show the whole chain, not just the leaf
        assert "DomainShard.run_to" in finding.message
        assert "_collect" in finding.message
        assert "_record" in finding.message
        assert "shared-ok[R006]" in finding.message  # remediation hint

    def test_injected_class_attribute_write_is_caught(self):
        (finding,) = rule_findings(
            ShardIsolationRule(), "r006_bad_injected_write.py"
        )
        assert "coordinator" in finding.message

    def test_unused_marker_is_its_own_finding(self):
        (finding,) = rule_findings(
            ShardIsolationRule(), "r006_bad_unused_shared_ok.py"
        )
        assert "unused" in finding.message
        assert "shared-ok[R006]" in finding.message


class TestR007Fixtures:
    @pytest.mark.parametrize("name,expected", R007_MATRIX)
    def test_expected_finding_count(self, name, expected):
        findings = rule_findings(RngProvenanceRule(), name)
        assert len(findings) == expected, [f.message for f in findings]
        assert all(f.code == "R007" for f in findings)

    def test_global_singleton_flags_both_definition_and_draw(self):
        findings = rule_findings(
            RngProvenanceRule(), "r007_bad_global_rng.py"
        )
        messages = "\n".join(f.message for f in findings)
        assert "module-level RNG singleton" in messages
        assert "module-global" in messages

    def test_rng_on_shared_coordinator_flagged(self):
        (finding,) = rule_findings(
            RngProvenanceRule(), "r007_bad_rng_on_shared.py"
        )
        assert "FederationCoordinator" in finding.message


CLOSURE_SRC = '''\
REGISTRY = []


class DomainShard:
    def run_to(self, target):
        chain = {}

        def _tick():
            # mutates the *enclosing* local, not a module global
            chain["n"] = chain.get("n", 0) + 1

        def _leak():
            REGISTRY.append(target)

        _tick()
        _leak()
'''


class TestCallGraphMechanics:
    def test_closure_capture_is_not_a_module_write(self):
        project = Project(
            [FileContext("src/repro/_fixture/closure.py", CLOSURE_SRC)]
        )
        findings = run_lint(
            rules=[ShardIsolationRule()], project=project
        ).findings
        # _tick's write to the captured dict is shard-local; only _leak's
        # append to the module-level REGISTRY is a violation
        assert len(findings) == 1
        assert "REGISTRY" in findings[0].message
        assert "_leak" in findings[0].message

    def test_bound_names_sees_store_context_only(self):
        import ast

        fn = ast.parse(
            "def f(a):\n"
            "    b = Other\n"
            "    Other.attr = 1\n"
        ).body[0]
        names = bound_names(fn, params=("a",))
        assert "a" in names and "b" in names
        assert "Other" not in names  # Load-context receiver stays global

    def test_outer_locals_silence_nested_writes(self):
        import ast

        outer = ast.parse(
            "def every(self):\n"
            "    chain = {}\n"
            "    def _tick():\n"
            "        chain['k'] = 1\n"
        ).body[0]
        nested = outer.body[1]
        eff = extract_effects(nested, params=(), outer_locals=("chain",))
        assert eff.name_writes == []

    def test_repo_graph_reaches_through_the_federation_stack(self):
        cg = get_callgraph(load_project(root=str(REPO_ROOT)))
        entries = cg.entry_points(ENTRY_POINTS)
        assert entries, "DomainShard entry points must resolve"
        reachable, parents = cg.reachable(entries)
        assert len(reachable) > 100
        mods = {cg.functions[fid].module for fid in reachable}
        # scheduler callbacks registered at shard construction pull the
        # whole per-shard algorithm stack into the parallel region
        assert any(m.startswith("repro.core.") for m in mods)
        assert any(m.startswith("repro.simnet.") for m in mods)

    def test_callgraph_memoised_on_project_cache(self):
        project = load_project(root=str(REPO_ROOT))
        assert get_callgraph(project) is get_callgraph(project)

    def test_build_callgraph_only_scans_package_sources(self):
        project = Project([
            FileContext("tools/fixture.py", "GLOBAL = []\n"),
            FileContext("src/repro/_fixture/a.py", "X = 1\n"),
        ])
        cg = build_callgraph(project)
        assert all(
            mod.rel_path.startswith("src/repro/")
            for mod in cg.modules.values()
        )
