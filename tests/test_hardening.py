"""Control-plane hardening over the simulated network.

Epoch fencing across failover, report-history edge cases, registration
soft-state expiry, byzantine receiver behaviour, control-packet corruption,
tree-level quarantine enforcement — and the adversarial acceptance run
(:class:`TestByzantineAcceptance`): with one lie-high and one lie-low
receiver, both are quarantined within five control intervals and every
honest receiver stays within one layer of its same-seed no-attack baseline.
"""

import numpy as np
import pytest

from repro.baselines.static import StaticController
from repro.control.agent import ControllerAgent, ReceiverAgent
from repro.control.discovery import TopologyDiscovery
from repro.control.messages import (
    CONTROL_PORT,
    Register,
    RegisterAck,
    Report,
    Suggestion,
)
from repro.control.session import SessionDescriptor
from repro.experiments.byzantine import run_byzantine
from repro.experiments.scenario import Scenario
from repro.faults import FaultInjector, FaultPlan
from repro.media.layers import LayerSchedule
from repro.media.receiver import LayeredReceiver
from repro.media.source import LayeredSource
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.packet import CONTROL, Packet
from repro.simnet.topology import Network


def build(n_layers=3, bandwidth=10e6, algorithm=None, **controller_kwargs):
    """src -- mid -- rcv line with a source, receiver and controller."""
    sched = Scheduler()
    net = Network(sched)
    for name in ["src", "mid", "rcv"]:
        net.add_node(name)
    net.add_link("src", "mid", bandwidth=bandwidth, delay=0.05)
    net.add_link("mid", "rcv", bandwidth=bandwidth, delay=0.05)
    net.build_routes()
    mcast = MulticastManager(net, leave_latency=0.5, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=n_layers, base_rate=32_000)
    groups = tuple(mcast.create_group("src") for _ in range(n_layers))
    desc = SessionDescriptor(0, "src", groups, schedule)
    source = LayeredSource(net.node("src"), 0, groups, schedule, model="cbr")
    source.start()
    receiver = LayeredReceiver(
        net.node("rcv"), 0, list(groups), schedule, mcast,
        receiver_id="R", initial_level=1,
    )
    if algorithm is None:
        algorithm = StaticController(level=2)
    discovery = TopologyDiscovery(mcast, staleness=0.0)
    controller = ControllerAgent(
        net.node("src"), [desc], discovery, algorithm, interval=1.0,
        **controller_kwargs,
    )
    agent = ReceiverAgent(receiver, "src", interval=1.0, rng=np.random.default_rng(0))
    return sched, net, mcast, desc, receiver, controller, agent


def _deliver(agent, msg):
    """Hand a control message straight to the receiver agent."""
    agent._on_packet(Packet(
        src="src", dst="rcv", size=64, kind=CONTROL,
        port=agent.port, payload=msg, created_at=agent.sched.now,
    ))


def _line_scenario(seed=1, access_bw=500e3):
    sc = Scenario(seed=seed)
    for n in ("src", "mid", "rcv"):
        sc.add_node(n)
    sc.add_link("src", "mid", bandwidth=10e6)
    sc.add_link("mid", "rcv", bandwidth=access_bw)
    sess = sc.add_session("src", traffic="cbr")
    sc.attach_controller("src")
    sc.add_receiver(sess.session_id, "rcv", receiver_id="R")
    return sc


# ----------------------------------------------------------------------
# Epoch fencing
# ----------------------------------------------------------------------
class TestEpochFencing:
    def test_lower_epoch_suggestion_rejected(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        agent._started_at = 0.0
        _deliver(agent, Suggestion("R", 0, level=2, issued_at=0.0, epoch=5))
        assert receiver.level == 2
        assert agent.controller_epoch == 5
        _deliver(agent, Suggestion("R", 0, level=3, issued_at=0.0, epoch=3))
        assert receiver.level == 2  # stale controller ignored
        assert agent.stale_suggestions_rejected == 1
        _deliver(agent, Suggestion("R", 0, level=3, issued_at=0.0, epoch=6))
        assert receiver.level == 3
        assert agent.controller_epoch == 6

    def test_epoch_zero_always_admitted(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        _deliver(agent, Suggestion("R", 0, level=2, issued_at=0.0, epoch=5))
        _deliver(agent, Suggestion("R", 0, level=1, issued_at=0.0, epoch=0))
        assert receiver.level == 1  # legacy unfenced message still obeyed
        assert agent.controller_epoch == 5  # high-water mark untouched

    def test_stale_ack_does_not_register(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        _deliver(agent, Suggestion("R", 0, level=1, issued_at=0.0, epoch=5))
        _deliver(agent, RegisterAck("R", 0, epoch=3))
        assert not agent.registered
        assert agent.stale_suggestions_rejected == 1

    def test_malformed_suggestions_rejected(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        _deliver(agent, Suggestion("OTHER", 0, level=2, issued_at=0.0))
        _deliver(agent, Suggestion("R", 99, level=2, issued_at=0.0))
        _deliver(agent, Suggestion("R", 0, level=-1, issued_at=0.0))
        _deliver(agent, Suggestion("R", 0, level=99, issued_at=0.0))
        _deliver(agent, Suggestion("R", 0, level=True, issued_at=0.0))
        assert agent.invalid_suggestions_rejected == 5
        assert receiver.level == 1

    def test_start_bumps_epoch_and_stamps_messages(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        assert controller.epoch == 0
        controller.start()
        assert controller.epoch == 1
        agent.start()
        sched.run(until=5.0)
        assert agent.controller_epoch == 1

    def test_deposed_controller_fenced_out_after_failover(self):
        """The acceptance criterion: a restarted pre-failover primary keeps
        its (stale) state and keeps suggesting, but receivers reject every
        message it sends."""
        sc = Scenario(seed=1)
        for n in ("src", "mid", "standby", "rcv"):
            sc.add_node(n)
        sc.add_link("src", "mid", bandwidth=10e6)
        sc.add_link("standby", "mid", bandwidth=10e6)
        sc.add_link("mid", "rcv", bandwidth=500e3)
        sess = sc.add_session("src", traffic="cbr")
        sc.attach_controller("src", standby_node="standby")
        sc.add_receiver(sess.session_id, "rcv", receiver_id="R",
                        agent_kwargs={"reregister_after": 3.0})
        primary = sc.controller
        plan = (
            FaultPlan()
            .crash_controller(10.0)
            .failover_controller(12.0)
            .restart_controller(18.0)  # deposed primary comes back, warm
        )
        plan.apply(sc)
        sc.run(35.0)
        standby = sc.controller
        assert standby is not primary
        # The standby's fencing token is strictly above the restarted
        # primary's, even though the primary bumped its own on restart.
        assert primary.active and standby.active
        assert standby.epoch > primary.epoch
        agent = sc.receivers[0].agent
        # The primary retained the registration and kept suggesting from its
        # stale tables; every one of those messages was fenced out.
        assert primary.suggestions_sent > 0
        assert agent.stale_suggestions_rejected >= 1
        assert agent.controller_epoch == standby.epoch
        assert agent.controller_node == "standby"
        assert agent.registered


# ----------------------------------------------------------------------
# Report history (_report_as_of) edge cases
# ----------------------------------------------------------------------
class TestReportHistory:
    def _controller(self):
        return build()[5]

    def _rep(self, seq, loss=0.0):
        return Report("R", 0, loss_rate=loss, bytes=4000.0, level=1,
                      t0=0.0, t1=1.0, seq=seq)

    def test_empty_history_returns_none(self):
        controller = self._controller()
        assert controller._report_as_of((0, "R"), cutoff=10.0) is None

    def test_cutoff_exactly_at_arrival_included(self):
        controller = self._controller()
        rep = self._rep(1)
        controller._report_history[(0, "R")] = [(5.0, rep)]
        assert controller._report_as_of((0, "R"), cutoff=5.0) is rep
        assert controller._report_as_of((0, "R"), cutoff=4.999) is None

    def test_newest_eligible_report_wins(self):
        controller = self._controller()
        a, b, c = self._rep(1), self._rep(2), self._rep(3)
        controller._report_history[(0, "R")] = [(1.0, a), (2.0, b), (3.0, c)]
        assert controller._report_as_of((0, "R"), cutoff=2.5) is b

    def test_history_pruned_to_64_entries(self):
        controller = self._controller()
        key = (0, "R")
        controller.registrations[key] = Register("R", 0, "rcv", "rcv:0:R")
        for seq in range(1, 101):
            controller._on_packet(Packet(
                src="rcv", dst="src", size=96, kind=CONTROL,
                port=CONTROL_PORT, payload=self._rep(seq), created_at=0.0,
            ))
        history = controller._report_history[key]
        assert len(history) == 64
        # The oldest 36 were dropped; the newest survive in order.
        assert [rep.seq for _, rep in history] == list(range(37, 101))
        assert controller.latest_reports[key].seq == 100


# ----------------------------------------------------------------------
# clear_state and registration soft state
# ----------------------------------------------------------------------
class TestControllerState:
    def test_clear_state_resets_learned_state_and_counters(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        controller.start()
        agent.start()
        sched.run(until=6.0)
        assert controller.reports_received > 0
        assert controller.last_suggestions is not None
        assert controller._last_suggested
        epoch_before = controller.epoch
        controller.clear_state()
        assert controller.registrations == {}
        assert controller.latest_reports == {}
        assert controller._report_history == {}
        assert controller._last_heard == {}
        assert controller._last_suggested == {}
        assert controller.last_suggestions is None
        assert controller.reports_received == 0
        assert controller.suggestions_sent == 0
        assert controller.updates_run == 0
        assert controller.discovery_failures == 0
        assert controller.sessions_skipped == 0
        assert controller.registrations_expired == 0
        # Fencing tokens only move forward: the epoch survives.
        assert controller.epoch == epoch_before

    def test_silent_registration_expires(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        controller.start()
        agent.start()
        sched.run(until=5.0)
        assert (0, "R") in controller.registrations
        agent.stop()  # receiver departs without a goodbye
        # TTL is 10 intervals of 1 s; well past it the soft state is gone.
        sched.run(until=20.0)
        assert (0, "R") not in controller.registrations
        assert (0, "R") not in controller.latest_reports
        assert controller.registrations_expired == 1

    def test_active_registration_never_expires(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        controller.start()
        agent.start()
        sched.run(until=30.0)
        assert (0, "R") in controller.registrations
        assert controller.registrations_expired == 0

    def test_ttl_none_disables_expiry(self):
        sched, net, mcast, desc, receiver, controller, agent = build(
            registration_ttl_intervals=None
        )
        controller.start()
        agent.start()
        sched.run(until=5.0)
        agent.stop()
        sched.run(until=30.0)
        assert (0, "R") in controller.registrations

    def test_bad_controller_params_rejected(self):
        sched = Scheduler()
        net = Network(sched)
        net.add_node("a")
        mcast = MulticastManager(net)
        disc = TopologyDiscovery(mcast)

        def make(**kw):
            return ControllerAgent(net.node("a"), [], disc, StaticController(1), **kw)

        with pytest.raises(ValueError):
            make(initial_epoch=-1)
        with pytest.raises(ValueError):
            make(registration_ttl_intervals=0.0)
        with pytest.raises(ValueError):
            make(quarantine_level=-1)


# ----------------------------------------------------------------------
# Byzantine receiver behaviour
# ----------------------------------------------------------------------
class TestByzantineReceiver:
    def test_unknown_mode_rejected(self):
        agent = build()[6]
        with pytest.raises(ValueError):
            agent.set_byzantine("meteor")
        with pytest.raises(ValueError):
            agent.set_byzantine("lie_high+meteor")
        agent.set_byzantine("lie_high+disobey")  # combinations are fine
        agent.set_byzantine(None)
        assert agent.byzantine_mode is None

    def test_lie_high_is_quarantined_and_pinned(self):
        sched, net, mcast, desc, receiver, controller, agent = build()
        agent.set_byzantine("lie_high")
        controller.start()
        agent.start()
        sched.run(until=15.0)
        assert agent.lies_told > 0
        assert controller.guard.is_quarantined((0, "R"))
        assert controller.guard.strike_counts["inconsistent_loss"] >= 3
        # Suggestions clamp to quarantine_level (1), and the honest media
        # path still obeys them: the receiver sits at 1, not Static's 2.
        assert receiver.level == 1

    def test_disobedient_climber_accrues_strikes(self):
        sched, net, mcast, desc, receiver, controller, agent = build(n_layers=6)
        agent.set_byzantine("disobey")
        controller.start()
        agent.start()
        sched.run(until=20.0)
        # Ignored Static's level-2 suggestions and climbed to the top.
        assert receiver.level == 6
        assert agent.suggestions_received > 0  # heard, counted, ignored
        assert controller.guard.strike_counts["disobedience"] >= 3
        assert controller.guard.is_quarantined((0, "R"))

    def test_fault_injector_flips_modes(self):
        sc = _line_scenario()
        plan = (
            FaultPlan()
            .byzantine(5.0, "R", "lie_high")
            .stop_byzantine(10.0, "R")
        )
        injector = plan.apply(sc)
        sc.run(12.0)
        agent = sc.receivers[0].agent
        assert agent.byzantine_mode is None  # stopped again
        assert agent.lies_told > 0
        assert [(t, k) for t, k, _ in injector.log] == [
            (5.0, "byzantine_start"), (10.0, "byzantine_stop"),
        ]

    def test_unknown_receiver_raises(self):
        sc = _line_scenario()
        injector = FaultInjector(sc)
        with pytest.raises(KeyError):
            injector.byzantine.start("NOBODY", "lie_high")


# ----------------------------------------------------------------------
# Tree-level quarantine enforcement
# ----------------------------------------------------------------------
class TestQuarantineEnforcement:
    def test_set_blocked_overrides_desire(self):
        sched = Scheduler()
        net = Network(sched)
        for n in ("s", "r"):
            net.add_node(n)
        net.add_link("s", "r", bandwidth=1e6)
        net.build_routes()
        mcast = MulticastManager(net, igmp_report_delay=0.0, leave_latency=0.0)
        g = mcast.create_group("s")
        mcast.join(g, "r")
        sched.run(until=1.0)
        assert "r" in mcast.members(g)
        mcast.set_blocked(g, "r", True)
        sched.run(until=2.0)
        assert "r" not in mcast.members(g)
        # Joins while blocked are recorded but denied ...
        mcast.join(g, "r")
        sched.run(until=3.0)
        assert "r" not in mcast.members(g)
        # ... and take effect once the block lifts.
        mcast.set_blocked(g, "r", False)
        sched.run(until=4.0)
        assert "r" in mcast.members(g)

    def test_set_blocked_is_idempotent(self):
        sched = Scheduler()
        net = Network(sched)
        for n in ("s", "r"):
            net.add_node(n)
        net.add_link("s", "r", bandwidth=1e6)
        net.build_routes()
        mcast = MulticastManager(net)
        g = mcast.create_group("s")
        t1 = mcast.set_blocked(g, "r", True)
        t2 = mcast.set_blocked(g, "r", True)  # no-op
        assert t2 <= t1  # effective immediately: nothing to change
        assert "r" in mcast.groups[g].blocked

    def test_disobedient_liar_pruned_from_upper_layers(self):
        # End-to-end: in a scenario (enforcer wired), a lie_low+disobey
        # receiver is physically cut from every group above quarantine_level
        # even though it ignores all suggestions.
        sc = _line_scenario(access_bw=1.5e6)
        FaultPlan().byzantine(10.0, "R", "lie_low+disobey").apply(sc)
        sc.run(60.0)
        controller = sc.controller
        assert controller.guard.is_quarantined((0, "R"))
        groups = sc.sessions[0].groups
        # Blocked above level 1: member of the base group at most.
        for g in groups[1:]:
            assert "rcv" not in sc.mcast.members(g)
        handle = sc.receivers[0]
        assert handle.receiver.level > 1  # it *wants* the layers ...
        before = handle.receiver.total_bytes
        sc.run(5.0)
        delta_bits = (handle.receiver.total_bytes - before) * 8 / 5.0
        # ... but receives at most the base layer's rate (plus slack).
        assert delta_bits < 1.5 * 32_000


# ----------------------------------------------------------------------
# Control-packet corruption
# ----------------------------------------------------------------------
class TestPacketCorruption:
    def test_garble_rejected_until_restored(self):
        sc = _line_scenario()
        plan = (
            FaultPlan()
            .corrupt_control(0.0, "rcv", mode="garble")
            .restore_control(15.0, "rcv")
        )
        plan.apply(sc)
        sc.run(14.0)
        controller = sc.controller
        # Every report sent over the corrupted channel failed validation
        # (loss driven to -1): the algorithm saw none of them.
        assert controller.reports_received == 0
        assert controller.guard.rejections["loss_out_of_range"] > 0
        sc.run(25.0)  # clean channel again
        assert sc.receivers[0].agent.registered
        assert controller.reports_received > 0

    def test_garble_drives_each_message_type_out_of_range(self):
        from repro.faults.injectors import PacketCorruptionFault

        def garbled(payload):
            pkt = Packet(src="a", dst="b", size=64, kind=CONTROL,
                         port=CONTROL_PORT, payload=payload, created_at=0.0)
            return PacketCorruptionFault._garble(pkt).payload

        rep = garbled(Report("R", 0, 0.1, 4000.0, 1, 0.0, 1.0, seq=3))
        assert rep.loss_rate < 0.0 and rep.bytes < 0.0
        assert garbled(Register("R", 0, "rcv", "rcv:0:R")).port == ""
        assert garbled(Suggestion("R", 0, level=2, issued_at=0.0)).level == -1
        ack = garbled(RegisterAck("R", 0))
        assert ack.receiver_id != "R"
        assert garbled("mystery") == ("garbled", "mystery")

    def test_duplicates_deduplicated_by_seq(self):
        sc = _line_scenario()
        FaultPlan().corrupt_control(0.0, "rcv", mode="duplicate").apply(sc)
        sc.run(20.0)
        controller = sc.controller
        agent = sc.receivers[0].agent
        assert agent.registered
        assert controller.reports_received >= 3  # originals still flow
        # Every copy carried an already-seen seq and was dropped.
        assert controller.guard.rejections["stale_seq"] >= 3
        assert controller.reports_received < agent.reports_sent * 2

    def test_reordering_rejected_by_seq(self):
        sc = _line_scenario()
        FaultPlan().corrupt_control(2.0, "rcv", mode="reorder").apply(sc)
        sc.run(30.0)
        controller = sc.controller
        # Swapped pairs: the held-back earlier message arrives after its
        # successor and is rejected as a stale straggler.
        assert controller.guard.rejections["stale_seq"] >= 2
        assert controller.reports_received >= 3

    def test_restore_flushes_held_packet(self):
        sc = _line_scenario()
        injector = FaultInjector(sc)
        sc.run(5.0)
        injector.wire.corrupt("rcv", mode="reorder", rate=1.0)
        node = sc.network.node("rcv")
        pkt = Packet(src="rcv", dst="src", size=64, kind=CONTROL,
                     port=CONTROL_PORT, payload="held-probe",
                     created_at=sc.sched.now)
        node.send(pkt)
        assert injector.wire._active["rcv"]["held"] is pkt
        before = sc.controller.guard.rejections.get("unknown_payload", 0)
        injector.wire.restore("rcv")
        sc.run(6.0)
        # The flushed probe reached the controller (counted as malformed).
        assert sc.controller.guard.rejections["unknown_payload"] == before + 1

    def test_corrupt_validation(self):
        sc = _line_scenario()
        injector = FaultInjector(sc)
        with pytest.raises(ValueError):
            injector.wire.corrupt("rcv", mode="mangle")
        with pytest.raises(ValueError):
            injector.wire.corrupt("rcv", rate=0.0)
        injector.wire.corrupt("rcv", mode="garble", rate=0.5)
        with pytest.raises(ValueError):
            injector.wire.corrupt("rcv")  # already corrupting
        injector.wire.restore("rcv")
        injector.wire.restore("rcv")  # second restore is a no-op


# ----------------------------------------------------------------------
# The adversarial acceptance run
# ----------------------------------------------------------------------
class TestByzantineAcceptance:
    def test_seeded_attack_quarantined_honest_unharmed(self):
        result = run_byzantine(seed=1)
        assert result["ok"], result
        for rid, liar in result["liars"].items():
            assert liar["within_deadline"], (rid, liar)
            assert liar["quarantined_at"] <= result["quarantine_deadline"]
        assert result["false_quarantines"] == []
        assert result["precision"] == 1.0
        assert result["recall"] == 1.0
        for rid, h in result["honest"].items():
            assert h["mean_divergence"] <= result["divergence_budget"], (rid, h)
            assert not h["ever_quarantined"]

    def test_attack_start_validated(self):
        with pytest.raises(ValueError):
            run_byzantine(seed=1, duration=60.0, attack_start=60.0)
