"""Tests for multi-domain (hierarchical) control: domain-clipped discovery
and independent per-domain controllers (paper Figs. 2-3)."""

import pytest

from repro.control.discovery import TopologyDiscovery
from repro.control.session import SessionDescriptor
from repro.experiments.domains import build_two_domain_topology
from repro.media.layers import LayerSchedule
from repro.multicast.manager import MulticastManager
from repro.simnet.engine import Scheduler
from repro.simnet.topology import Network


def setup_net():
    r"""src - core - gw1 - r1 ; core - gw2 - r2."""
    sched = Scheduler()
    net = Network(sched)
    for n in ["src", "core", "gw1", "gw2", "r1", "r2"]:
        net.add_node(n)
    net.add_link("src", "core", bandwidth=1e6, delay=0.1)
    net.add_link("core", "gw1", bandwidth=1e6, delay=0.1)
    net.add_link("core", "gw2", bandwidth=1e6, delay=0.1)
    net.add_link("gw1", "r1", bandwidth=1e6, delay=0.1)
    net.add_link("gw2", "r2", bandwidth=1e6, delay=0.1)
    net.build_routes()
    mcast = MulticastManager(net, igmp_report_delay=0.0)
    schedule = LayerSchedule(n_layers=2)
    groups = tuple(mcast.create_group("src") for _ in range(2))
    desc = SessionDescriptor("S", "src", groups, schedule)
    return sched, net, mcast, desc


class TestDomainDiscovery:
    def test_domain_clips_tree_and_reroots(self):
        sched, net, mcast, desc = setup_net()
        disc = TopologyDiscovery(mcast, domain={"gw1", "r1"})
        mcast.join(desc.groups[0], "r1")
        mcast.join(desc.groups[0], "r2")
        sched.run(until=1.0)
        tree = disc.session_tree(desc, {"A": "r1", "B": "r2"})
        assert tree.root == "gw1"
        assert tree.edges == frozenset({("gw1", "r1")})
        # Only the in-domain receiver is visible.
        assert tree.receivers == {"r1": "A"}

    def test_source_inside_domain_keeps_root(self):
        sched, net, mcast, desc = setup_net()
        disc = TopologyDiscovery(mcast, domain={"src", "core", "gw1", "r1"})
        mcast.join(desc.groups[0], "r1")
        sched.run(until=1.0)
        tree = disc.session_tree(desc, {"A": "r1"})
        assert tree.root == "src"
        assert ("src", "core") in tree.edges

    def test_session_not_reaching_domain_yields_empty_tree(self):
        sched, net, mcast, desc = setup_net()
        disc = TopologyDiscovery(mcast, domain={"gw2", "r2"})
        mcast.join(desc.groups[0], "r1")  # only domain 1 joined
        sched.run(until=1.0)
        tree = disc.session_tree(desc, {"A": "r1"})
        assert tree.edges == frozenset()
        assert tree.receivers == {}

    def test_layer_overlay_respected_in_domain(self):
        sched, net, mcast, desc = setup_net()
        disc = TopologyDiscovery(mcast, domain={"gw1", "r1"})
        mcast.join(desc.groups[0], "r1")
        mcast.join(desc.groups[1], "r1")
        sched.run(until=1.0)
        tree = disc.session_tree(desc, {"A": "r1"})
        assert tree.layers_on_edge[("gw1", "r1")] == 2


class TestTwoDomainScenario:
    def test_structure(self):
        sc = build_two_domain_topology(receivers_per_domain=2, seed=1)
        assert set(sc.controllers) == {"d1", "d2"}
        assert len(sc.receivers) == 4
        res = sc.run(10.0)
        opt = res.optimal_levels()
        sid = sc.receivers[0].session_id
        assert opt[(sid, "D1-0")] == 4
        assert opt[(sid, "D2-0")] == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            build_two_domain_topology(receivers_per_domain=0)

    def test_domains_converge_independently(self):
        sc = build_two_domain_topology(receivers_per_domain=2, traffic="cbr", seed=2)
        res = sc.run(200.0)
        d1 = [h for h in sc.receivers if h.receiver_id.startswith("D1")]
        d2 = [h for h in sc.receivers if h.receiver_id.startswith("D2")]
        d1_mean = sum(h.trace.time_weighted_mean(60, 200) for h in d1) / len(d1)
        d2_mean = sum(h.trace.time_weighted_mean(60, 200) for h in d2) / len(d2)
        # Each domain tracks its own optimum (4 vs 2).
        assert 3.0 <= d1_mean <= 5.0, d1_mean
        assert 1.2 <= d2_mean <= 3.0, d2_mean

    def test_each_controller_sees_only_its_receivers(self):
        sc = build_two_domain_topology(receivers_per_domain=2, seed=3)
        sc.run(30.0)
        d1_regs = set(sc.controllers["d1"].registrations)
        d2_regs = set(sc.controllers["d2"].registrations)
        assert all(rid.startswith("D1") for _, rid in d1_regs)
        assert all(rid.startswith("D2") for _, rid in d2_regs)
        assert d1_regs and d2_regs

    def test_duplicate_domain_name_rejected(self):
        sc = build_two_domain_topology(seed=1)
        with pytest.raises(ValueError):
            sc.attach_controller("core", name="d1")

    def test_unknown_controller_name_rejected_at_run(self):
        sc = build_two_domain_topology(seed=1)
        sid = sc.receivers[0].session_id
        sc.add_node("extra")
        sc.add_link("gw1", "extra", bandwidth=1e6)
        sc.add_receiver(sid, "extra", controller="ghost")
        with pytest.raises(ValueError, match="ghost"):
            sc.run(5.0)
