"""Quickstart: build a small network, run TopoSense, watch a receiver adapt.

A single layered video session (6 layers: 32..1024 Kb/s, the paper's
schedule) is multicast from ``studio`` to one receiver behind a 500 Kb/s
access link.  The TopoSense controller, stationed at the source, discovers
the tree, collects the receiver's loss reports, and steers its subscription:
the receiver should climb to 4 layers (480 Kb/s — the most that fits),
occasionally probe the 5th, and back off when the probe congests the link.

Run:  python examples/quickstart.py
"""

from repro.experiments.scenario import Scenario


def main() -> None:
    sc = Scenario(seed=7)

    # --- topology: studio --- isp --- home (500 Kb/s last mile) ---------
    sc.add_node("studio")
    sc.add_node("isp")
    sc.add_node("home")
    sc.add_link("studio", "isp", bandwidth=10e6)   # backbone
    sc.add_link("isp", "home", bandwidth=500e3)    # the bottleneck

    # --- a layered session + the TopoSense controller -------------------
    session = sc.add_session("studio", traffic="cbr")
    sc.attach_controller("studio")  # paper: controller at a source node
    viewer = sc.add_receiver(session.session_id, "home", receiver_id="viewer")

    # --- run -------------------------------------------------------------
    print(sc.network.describe())
    print("\nsimulating 180 s ...\n")
    result = sc.run(180.0)

    # --- inspect ----------------------------------------------------------
    print(result.summary())
    print("\nsubscription trace (time, layers):")
    trace = viewer.trace
    for t, level in zip(trace.times, trace.values):
        print(f"  {t:7.1f}s  {'#' * int(level)}  ({int(level)} layers)")

    optimal = result.optimal_levels()[(session.session_id, "viewer")]
    print(f"\noptimal level: {optimal} "
          f"(cumulative {session.schedule.cumulative(optimal) / 1e3:.0f} Kb/s "
          f"on a 500 Kb/s link)")
    print(f"relative deviation from optimal (after 30s warmup): "
          f"{result.deviation_of('viewer', 30.0):.3f}")


if __name__ == "__main__":
    main()
