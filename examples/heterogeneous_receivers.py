"""Heterogeneous receivers (the paper's Topology A, Figs. 1 and 6).

One session, two classes of receivers: broadband (500 Kb/s -> 4 layers) and
narrowband (100 Kb/s -> 2 layers).  The point of topology-aware control: the
narrowband receivers' losses must not drag the broadband receivers down,
because the controller can see they sit in *disjoint subtrees* ("disjoint
subtrees on the multicast tree do not affect each other as long as their
common ancestors have a high capacity").

Run:  python examples/heterogeneous_receivers.py
"""

from repro.experiments.topologies import build_topology_a
from repro.metrics.fairness import jain_index


def main() -> None:
    sc = build_topology_a(n_receivers=6, traffic="vbr", peak_to_mean=3, seed=11)
    print(sc.network.describe())
    print("\nsimulating 300 s (VBR, peak-to-mean 3) ...\n")
    result = sc.run(300.0)

    optimal = result.optimal_levels()
    warmup = 60.0
    print(f"{'receiver':<10} {'class':<12} {'mean level':<12} "
          f"{'optimal':<8} {'changes':<8} deviation")
    for h in sc.receivers:
        klass = "broadband" if h.receiver_id.startswith("A") else "narrowband"
        mean = h.trace.time_weighted_mean(warmup, result.end_time)
        opt = optimal[(h.session_id, h.receiver_id)]
        dev = result.deviation_of(h.receiver_id, warmup)
        print(f"{h.receiver_id:<10} {klass:<12} {mean:<12.2f} {opt:<8} "
              f"{h.trace.num_changes(0, result.end_time):<8} {dev:.3f}")

    # Subtree independence check: the narrowband class's congestion must not
    # depress the broadband class below its own bottleneck.
    a_means = [
        h.trace.time_weighted_mean(warmup, result.end_time)
        for h in sc.receivers if h.receiver_id.startswith("A")
    ]
    b_means = [
        h.trace.time_weighted_mean(warmup, result.end_time)
        for h in sc.receivers if h.receiver_id.startswith("B")
    ]
    print(f"\nbroadband class mean:  {sum(a_means) / len(a_means):.2f} (optimal 4)")
    print(f"narrowband class mean: {sum(b_means) / len(b_means):.2f} (optimal 2)")
    print(f"intra-class fairness (Jain): "
          f"A={jain_index(a_means):.3f}, B={jain_index(b_means):.3f}")


if __name__ == "__main__":
    main()
