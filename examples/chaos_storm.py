"""Chaos storm: watch the control plane degrade gracefully and recover.

The canonical fault storm from ``repro.experiments.chaos`` is replayed over
a Topology-A-like network with a standby controller node:

* t=20 s  controller process crashes (port unbound, ticks stop)
* t=22 s  cold failover: the standby node takes over with an empty
          registration table; receivers' silence watchdogs fire, they
          rotate to the standby and re-register
* t=40 s  the core--agg_a backbone link flaps (down 3 s, twice, 6 s apart);
          multicast branches are torn down and regrafted each transition
* t=60 s  topology discovery blacks out until t=80 s; the controller keeps
          working from last-known-good trees (age-bounded)

Every fault event, each receiver's subscription trace, and the recovery
after each fault clearing are printed.  The same seed always produces the
same report.

Run:  python examples/chaos_storm.py
"""

from repro.experiments.chaos import (
    build_chaos_scenario,
    default_chaos_plan,
    run_chaos,
    render_chaos_report,
)
from repro.metrics.ascii_plot import render_level_timeline


def main() -> None:
    # The one-call version: build, inject, run, score.
    result = run_chaos(seed=1, duration=120.0)
    print(render_chaos_report(result))

    # The same run, stepwise, to get at the traces for a timeline plot.
    sc = build_chaos_scenario(seed=1)
    default_chaos_plan().apply(sc)
    sc.run(120.0)
    print()
    print("subscription level per receiver, 0..120s (faults: crash@20, "
          "failover@22, flap@40-49, discovery blackout@60-80):")
    for handle in sc.receivers:
        print(
            " ",
            render_level_timeline(
                handle.trace, 0.0, 120.0, width=72, label=f"{handle.receiver_id:>3} "
            ),
        )


if __name__ == "__main__":
    main()
