"""Competing sessions on a shared bottleneck (the paper's Topology B,
Figs. 7-9).

Four independent layered sessions cross one shared link sized so each can
ideally hold 4 layers (480 of 500 Kb/s per session).  TopoSense must share
the link fairly *without knowing its capacity* — it estimates the capacity
from loss reports whenever every session is lossy at once, then splits it
proportionally to what each session's subtree could use.

Run:  python examples/competing_sessions.py
"""

from repro.experiments.topologies import build_topology_b
from repro.metrics.fairness import bandwidth_shares, jain_index


def main() -> None:
    n = 4
    sc = build_topology_b(n_sessions=n, traffic="vbr", peak_to_mean=3, seed=5)
    print(sc.network.describe())
    print(f"\nshared link: {n * 500:.0f} Kb/s for {n} sessions "
          f"-> fair share 500 Kb/s = 4 layers each")
    print("simulating 400 s (VBR, peak-to-mean 3) ...\n")
    result = sc.run(400.0)

    warmup = 60.0
    means = []
    print(f"{'session':<10} {'mean level':<12} {'final':<8} {'changes':<8} "
          f"over-subscribed?")
    for h in sc.receivers:
        mean = h.trace.time_weighted_mean(warmup, result.end_time)
        means.append(mean)
        over = any(v > 4 for v in h.trace.values)
        print(f"{h.receiver_id:<10} {mean:<12.2f} {h.receiver.level:<8} "
              f"{h.trace.num_changes(0, result.end_time):<8} {over}")

    print(f"\nJain fairness index over mean levels: {jain_index(means):.3f} "
          f"(1.0 = perfectly fair)")
    print(f"level shares: {[f'{s:.2f}' for s in bandwidth_shares(means)]}")
    print(f"mean relative deviation from optimal (4 layers): "
          f"{result.mean_deviation(warmup):.3f}")

    # The Fig. 9 story: occasional over-subscription excursions that the
    # periodic capacity re-estimation provokes and loss feedback corrects.
    h = sc.receivers[0]
    print(f"\n{h.receiver_id} subscription trace (first 30 changes):")
    pts = list(zip(h.trace.times, h.trace.values))[:30]
    print("  " + ", ".join(f"{t:.0f}s->{int(v)}" for t, v in pts))


if __name__ == "__main__":
    main()
