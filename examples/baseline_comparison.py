"""TopoSense vs the baselines: what is topology information worth?

Runs the same heterogeneous scenario (Topology A) under four controllers:

* **toposense** — the paper's algorithm (topology-aware, estimates capacity);
* **rlm**       — receiver-driven layered multicast: each receiver probes on
                  its own using only end-to-end loss (topology-blind);
* **static**    — everyone pinned at 4 layers (right for broadband, lethal
                  for narrowband);
* **oracle**    — a controller that knows the true capacities (upper bound).

Run:  python examples/baseline_comparison.py
"""

from repro.baselines.oracle import OracleController
from repro.baselines.static import StaticController
from repro.experiments.topologies import build_topology_a


def run_variant(name: str, duration: float = 300.0, warmup: float = 60.0):
    kwargs = dict(n_receivers=4, traffic="vbr", peak_to_mean=3, seed=21)
    if name == "rlm":
        sc = build_topology_a(receiver_mode="rlm", **kwargs)
    elif name == "static":
        sc = build_topology_a(algorithm=StaticController(level=4), **kwargs)
    elif name == "oracle":
        # Build once to learn the plans, then rebuild with the oracle.
        probe = build_topology_a(**kwargs)
        oracle = OracleController(probe.network, list(probe.plans.values()))
        sc = build_topology_a(algorithm=oracle, **kwargs)
    else:
        sc = build_topology_a(**kwargs)
    result = sc.run(duration)
    dev = result.mean_deviation(warmup)
    changes, gap = result.stability()
    # Narrowband receivers' average loss rate: the cost of ignoring topology.
    b_loss = [
        h.receiver.loss_series.mean(warmup, duration)
        for h in sc.receivers
        if h.receiver_id.startswith("B")
    ]
    return {
        "controller": name,
        "deviation": dev,
        "worst_changes": changes,
        "mean_gap_s": gap,
        "narrowband_loss": sum(b_loss) / len(b_loss),
    }


def main() -> None:
    print("Topology A (2 broadband + 2 narrowband receivers), VBR(P=3), 300 s\n")
    rows = [run_variant(v) for v in ("oracle", "toposense", "rlm", "static")]
    hdr = f"{'controller':<12} {'deviation':<11} {'worst changes':<14} " \
          f"{'mean gap (s)':<13} narrowband loss"
    print(hdr)
    print("-" * len(hdr))
    for r in rows:
        print(f"{r['controller']:<12} {r['deviation']:<11.3f} "
              f"{r['worst_changes']:<14} {r['mean_gap_s']:<13.1f} "
              f"{r['narrowband_loss']:.3f}")
    print(
        "\nExpected: the oracle is near-perfect; TopoSense and RLM both track"
        "\nthe optimum, but TopoSense does it with several times fewer"
        "\nsubscription changes (coordinated back-off beats independent"
        "\nprobing) and the lowest narrowband loss; the static pin drowns the"
        "\nnarrowband class in sustained loss."
    )


if __name__ == "__main__":
    main()
