"""How stale may topology information be? (the paper's Fig. 10)

TopoSense depends on a topology-discovery tool (mtrace/SNMP-class).  Real
tools need seconds to walk a tree, so the controller always works with old
information.  This example sweeps the staleness knob on Topology A and
prints the deviation-from-optimal curve: performance should hold for a few
seconds of staleness (the tree barely changes that fast), degrade past ~4 s
and flatten out — the paper's conclusion that discovery latency comparable
to path RTTs is tolerable.

Run:  python examples/staleness_study.py
"""

from repro.experiments.topologies import build_topology_a


def main() -> None:
    duration = 300.0
    warmup = 60.0
    print("Topology A, 4 receivers, VBR(P=3), sweeping discovery staleness\n")
    print(f"{'staleness':<12} {'deviation':<12} {'worst changes':<14} bar")
    for staleness in (0.0, 2.0, 4.0, 6.0, 8.0, 12.0, 18.0):
        sc = build_topology_a(
            n_receivers=4, traffic="vbr", peak_to_mean=3,
            seed=9, staleness=staleness,
        )
        result = sc.run(duration)
        dev = result.mean_deviation(warmup)
        changes, _ = result.stability()
        bar = "#" * int(dev * 80)
        print(f"{staleness:<12.0f} {dev:<12.3f} {changes:<14} {bar}")
    print("\n(smaller deviation is better; 0 = always at the optimum)")


if __name__ == "__main__":
    main()
