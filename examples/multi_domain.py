"""Hierarchical multi-domain control (the paper's Figs. 2-3).

One session spans two administrative domains.  Each domain runs its own
TopoSense controller at its gateway; each controller discovers only its
domain's subtree and manages only its domain's receivers — "each domain and
controller agent is unaware of the other controller agents' existence".

The paper's scalability argument: since "disjoint subtrees on the multicast
tree do not affect each other as long as their common ancestors have a high
capacity", congestion control decomposes cleanly per domain.

Run:  python examples/multi_domain.py
"""

from repro.control.accounting import BillingLedger
from repro.experiments.domains import build_two_domain_topology


def main() -> None:
    sc = build_two_domain_topology(receivers_per_domain=3, traffic="cbr", seed=13)
    print(sc.network.describe())
    print("\ndomain 1 (500 Kb/s last mile, controller at gw1): optimal 4 layers")
    print("domain 2 (100 Kb/s last mile, controller at gw2): optimal 2 layers")

    # Bonus from the paper: the controller's report stream doubles as a
    # billing feed ("controller agents can also be very useful for billing").
    ledgers = {}
    for name, controller in sc.controllers.items():
        ledgers[name] = BillingLedger(price_per_mb=0.02, price_per_layer_hour=0.50)
        controller.attach_ledger(ledgers[name])

    print("\nsimulating 300 s ...\n")
    result = sc.run(300.0)

    warmup = 60.0
    for name, prefix in (("d1", "D1"), ("d2", "D2")):
        controller = sc.controllers[name]
        hs = [h for h in sc.receivers if h.receiver_id.startswith(prefix)]
        mean = sum(h.trace.time_weighted_mean(warmup, result.end_time) for h in hs) / len(hs)
        print(f"domain {name}: mean level {mean:.2f}, "
              f"{controller.updates_run} control intervals, "
              f"{controller.reports_received} reports, "
              f"{controller.suggestions_sent} suggestions")
        tree = sc.discoveries[name].session_tree(
            sc.sessions[hs[0].session_id],
            {h.receiver_id: h.node for h in hs},
        )
        print(f"  discovered subtree: root={tree.root!r}, "
              f"{len(tree.nodes)} nodes (domain-clipped)")

    print("\nbilling (per domain):")
    for name, ledger in ledgers.items():
        for (sid, rid), charge in sorted(ledger.invoice().items(), key=str):
            usage = ledger.usage(sid, rid)
            print(f"  {name} {rid}: {usage.megabytes:6.1f} MB, "
                  f"mean level {usage.mean_level:.2f} -> ${charge:.2f}")
    print(f"\ntotal revenue: ${sum(l.total_revenue() for l in ledgers.values()):.2f}")


if __name__ == "__main__":
    main()
