"""Setup shim for offline editable installs.

All metadata lives in pyproject.toml; this file only exists so pip can take
the legacy (non-isolated) install path in environments without network access.
"""

from setuptools import setup

setup()
