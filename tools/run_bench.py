"""Run the perf-trajectory benchmark suite and gate against a baseline.

The default run is exactly ``python -m repro bench``; this tool is the CI
entry point:

    # full suite, write BENCH_<rev>.json into the working directory
    python tools/run_bench.py

    # CI smoke: short horizons, gate aggregate events/sec against the
    # committed baseline, exit non-zero on a >30% regression
    python tools/run_bench.py --quick --baseline benchmarks/bench_baseline.json

    # refresh the committed baseline after an intentional perf change
    python tools/run_bench.py --quick --update-baseline benchmarks/bench_baseline.json

Only the aggregate events/sec is gated; per-scenario numbers and stage
timings are informational (see repro.obs.bench.check_against_baseline).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.bench import (  # noqa: E402
    check_against_baseline,
    render_bench_report,
    run_bench,
    write_bench_file,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short horizons for CI smoke use")
    parser.add_argument("--out", type=str, default=".",
                        help="directory for BENCH_<rev>.json (default: .)")
    parser.add_argument("--baseline", type=str, default=None,
                        help="baseline BENCH_*.json to gate events/sec against")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed events/sec regression fraction (default 0.30)")
    parser.add_argument("--update-baseline", type=str, default=None,
                        help="write the fresh result to this path and exit 0")
    parser.add_argument("--json", action="store_true",
                        help="emit the raw result JSON instead of the report")
    args = parser.parse_args(argv)

    result = run_bench(quick=args.quick)
    path = write_bench_file(result, args.out)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(render_bench_report(result))
    print(f"wrote {path}", file=sys.stderr)

    if args.update_baseline:
        Path(args.update_baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.update_baseline).write_text(
            json.dumps(result, indent=2, sort_keys=True)
        )
        print(f"baseline updated: {args.update_baseline}", file=sys.stderr)
        return 0

    if args.baseline:
        try:
            with open(args.baseline) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            parser.error(f"cannot load baseline {args.baseline!r}: {exc}")
        ok, msg = check_against_baseline(result, baseline, tolerance=args.tolerance)
        print(("PASS: " if ok else "FAIL: ") + msg)
        return 0 if ok else 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
