"""Replay a churn plan against every tree-builder backend, deterministically.

The default run is exactly ``python -m repro churn --seed 1``; this tool adds
plan round-tripping for churn-as-regression-test workflows:

    # run the canonical churn sweep and save the plan it used
    python tools/run_churn.py --seed 1 --save-plan churn.json

    # replay the saved plan (bit-identical result for the same seed)
    python tools/run_churn.py --seed 1 --plan churn.json

    # machine-readable output for CI
    python tools/run_churn.py --seed 1 --json > result.json

Exits non-zero when any backend misses the recovery bound, when the
protected backend never repairs locally, or when its local repairs are not
faster than SPT's full rebuilds — so CI can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.churn import (  # noqa: E402
    DEFAULT_DURATION,
    churn_receiver_ids,
    default_churn_plan,
    render_churn_report,
    run_churn,
)
from repro.faults import FaultPlan  # noqa: E402
from repro.multicast import BUILDER_NAMES  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--receivers", type=int, default=6)
    parser.add_argument("--backends", type=str, default=",".join(BUILDER_NAMES),
                        help="comma-separated backend names (default: all)")
    parser.add_argument("--plan", type=str, default=None,
                        help="JSON fault plan to replay (default: canonical churn)")
    parser.add_argument("--save-plan", type=str, default=None,
                        help="write the plan that was used to this JSON file")
    parser.add_argument("--recover-intervals", type=float, default=4.0)
    parser.add_argument("--json", action="store_true", help="emit the full result as JSON")
    args = parser.parse_args(argv)

    if args.plan:
        try:
            with open(args.plan) as fh:
                plan = FaultPlan.from_dicts(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load fault plan {args.plan!r}: {exc}")
    else:
        plan = default_churn_plan(
            churn_receiver_ids(args.receivers), duration=args.duration, seed=args.seed
        )

    if args.save_plan:
        with open(args.save_plan, "w") as fh:
            json.dump(plan.to_dicts(), fh, indent=2)

    result = run_churn(
        seed=args.seed,
        duration=args.duration,
        n_receivers=args.receivers,
        backends=[b.strip() for b in args.backends.split(",") if b.strip()],
        plan=plan,
        recover_intervals=args.recover_intervals,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(render_churn_report(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
