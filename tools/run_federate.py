"""Sweep domain count at fixed total receivers through the federated
control plane, and gate its scaling claims for CI.

The default run is exactly ``python -m repro federate --seed 1`` without
run artifacts:

    # the acceptance sweep: 1024 receivers across 2/4/8 domains
    python tools/run_federate.py --seed 1

    # machine-readable output for CI
    python tools/run_federate.py --seed 1 --receivers 48 --domains 2,4 \\
        --json > result.json

Exits non-zero when any gate fails: control bytes per receiver must stay
flat (within ``--tolerance``) as domains are added, the coordinator's
summary store must stay bounded by domains x sessions (and it must never
have been offered a per-receiver report), every domain must converge near
its oracle optimum, and the sequential and executor-parallel shard modes
must produce identical results (modulo wall timings).

Replaying the same seed and arguments reproduces ``result.json`` exactly,
except for the ``wall_s`` / ``shard_wall_ms`` timing fields — strip those
to diff runs (see the CI workflow).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.federation import (  # noqa: E402
    DEFAULT_DURATION,
    render_federate_report,
    run_federate,
)


def strip_timings(result: dict) -> dict:
    """A deep copy of ``result`` without wall-clock timing fields — the
    replay-diff projection used by CI."""
    clean = json.loads(json.dumps(result, default=str))
    for point in clean.get("points", []):
        point.pop("wall_s", None)
        point.pop("shard_wall_ms", None)
    return clean


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--receivers", type=int, default=1024,
                        help="total receivers, split evenly (default 1024)")
    parser.add_argument("--domains", type=str, default="2,4,8",
                        help="comma-separated domain counts (default 2,4,8)")
    parser.add_argument("--cadence", type=float, default=4.0)
    parser.add_argument("--parallel", action="store_true",
                        help="advance shards on a thread pool")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed control-B/receiver spread (default 0.15)")
    parser.add_argument("--no-parallel-check", action="store_true",
                        help="skip the mode-equivalence rerun")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    parser.add_argument("--strip-timings", action="store_true",
                        help="with --json: drop wall-clock fields so two "
                             "same-seed runs diff clean")
    args = parser.parse_args(argv)

    try:
        result = run_federate(
            seed=args.seed,
            duration=args.duration,
            total_receivers=args.receivers,
            domain_counts=[int(n) for n in args.domains.split(",") if n],
            cadence=args.cadence,
            parallel=args.parallel,
            tolerance=args.tolerance,
            check_parallel=not args.no_parallel_check,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        out = strip_timings(result) if args.strip_timings else result
        print(json.dumps(out, indent=2, default=str))
    else:
        print(render_federate_report(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
