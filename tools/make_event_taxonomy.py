#!/usr/bin/env python
"""Regenerate the DESIGN.md §10 event-taxonomy table from TOPIC_REGISTRY.

The canonical topic registry lives in ``src/repro/obs/bus.py``; the
markdown table between the ``<!-- topic-table:begin -->`` /
``<!-- topic-table:end -->`` markers in DESIGN.md is generated from it::

    python tools/make_event_taxonomy.py            # rewrite DESIGN.md
    python tools/make_event_taxonomy.py --check    # exit 1 if stale

``python -m repro lint`` rule R004 enforces the same freshness in CI, so
run this after any registry change.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.contracts import TABLE_BEGIN, TABLE_END  # noqa: E402
from repro.obs.bus import render_topic_table  # noqa: E402

DESIGN = ROOT / "DESIGN.md"


def main() -> int:
    check = "--check" in sys.argv[1:]
    text = DESIGN.read_text()
    begin, end = text.find(TABLE_BEGIN), text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        print(f"error: {TABLE_BEGIN} / {TABLE_END} markers not found in "
              f"{DESIGN.name}", file=sys.stderr)
        return 2
    updated = (
        text[:begin + len(TABLE_BEGIN)]
        + "\n" + render_topic_table() + "\n"
        + text[end:]
    )
    if updated == text:
        print(f"{DESIGN.name} topic table is up to date")
        return 0
    if check:
        print(f"{DESIGN.name} topic table is stale — run "
              "python tools/make_event_taxonomy.py", file=sys.stderr)
        return 1
    DESIGN.write_text(updated)
    print(f"wrote {DESIGN}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
