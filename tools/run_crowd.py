"""Run the flash-crowd workload sweep, deterministically.

The default run is exactly ``python -m repro crowd --seed 1``; this tool
adds workload-spec round-tripping for crowd-as-regression-test workflows:

    # run the sweep and save the (smallest point's) workload spec
    python tools/run_crowd.py --seed 1 --sizes 32 --save-spec crowd.json

    # replay the saved spec (bit-identical result for the same seed)
    python tools/run_crowd.py --seed 1 --sizes 32 --spec crowd.json

    # machine-readable output for CI; --strip-timings removes the only
    # non-deterministic fields (per-point wall clock) so two same-spec
    # runs diff to nothing
    python tools/run_crowd.py --seed 1 --json --strip-timings > result.json

Exits non-zero when the JSON-round-trip replay diverges, when a lossy
point shows no congestive-vs-wireless misattribution, when the control
bytes per live receiver exceed the declared bound, or when the federated
flash crowds fail to fully join.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.crowd import (  # noqa: E402
    CONTROL_BYTES_PER_LIVE_BOUND,
    DEFAULT_DURATION,
    DEFAULT_MAX_CONTROLLED,
    build_crowd_scenario,
    default_crowd_spec,
    edge_node_names,
    render_crowd_report,
    run_crowd,
    strip_timings,
)
from repro.workloads import WorkloadSpec  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--sizes", type=str, default="64,10000",
                        help="comma-separated flash-crowd sizes")
    parser.add_argument("--loss", type=str, default="0,0.15",
                        help="comma-separated wireless channel loss rates")
    parser.add_argument("--edges", type=int, default=8)
    parser.add_argument("--sessions", type=int, default=2)
    parser.add_argument("--incumbents", type=int, default=4)
    parser.add_argument("--max-controlled", type=int,
                        default=DEFAULT_MAX_CONTROLLED)
    parser.add_argument("--control-bound", type=float,
                        default=CONTROL_BYTES_PER_LIVE_BOUND)
    parser.add_argument("--federated-crowd", type=int, default=32,
                        help="per-domain crowd on the federated plane "
                             "(0 skips it)")
    parser.add_argument("--spec", type=str, default=None,
                        help="JSON workload spec to replay "
                             "(requires a single --sizes entry)")
    parser.add_argument("--save-spec", type=str, default=None,
                        help="write the smallest point's workload spec "
                             "to this JSON file")
    parser.add_argument("--strip-timings", action="store_true",
                        help="drop wall-clock fields from --json output")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    args = parser.parse_args(argv)

    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    loss_rates = [float(lo) for lo in args.loss.split(",") if lo.strip()]

    spec = None
    if args.spec:
        try:
            with open(args.spec) as fh:
                spec = WorkloadSpec.from_dict(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load workload spec {args.spec!r}: {exc}")

    if args.save_spec:
        if spec is None:
            _sc, session_ids = build_crowd_scenario(
                seed=args.seed, n_edges=args.edges,
                n_sessions=args.sessions, incumbents=args.incumbents,
            )
            size = min(sizes)
            mode = ("controlled" if size <= args.max_controlled
                    else "static")
            spec_out = default_crowd_spec(
                size, edge_node_names(args.edges), session_ids,
                duration=args.duration, seed=args.seed, mode=mode,
            )
        else:
            spec_out = spec
        with open(args.save_spec, "w") as fh:
            json.dump(spec_out.to_dict(), fh, indent=2)

    try:
        result = run_crowd(
            seed=args.seed,
            duration=args.duration,
            sizes=sizes,
            loss_rates=loss_rates,
            n_edges=args.edges,
            n_sessions=args.sessions,
            incumbents=args.incumbents,
            max_controlled=args.max_controlled,
            control_bound=args.control_bound,
            federated_crowd=args.federated_crowd,
            spec=spec,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        out = strip_timings(result) if args.strip_timings else result
        print(json.dumps(out, indent=2, default=str))
    else:
        print(render_crowd_report(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
