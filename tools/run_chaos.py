"""Replay a fault plan against the chaos scenario, deterministically.

The default run is exactly ``python -m repro chaos --seed 1``; this tool adds
plan round-tripping for chaos-as-regression-test workflows:

    # run the canonical storm and save the plan it used
    python tools/run_chaos.py --seed 1 --save-plan storm.json

    # replay the saved plan (bit-identical result for the same seed)
    python tools/run_chaos.py --seed 1 --plan storm.json

    # machine-readable output for CI
    python tools/run_chaos.py --seed 1 --json > result.json

Exits non-zero when any receiver misses the recovery bound, so CI can gate
on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.chaos import (  # noqa: E402
    DEFAULT_DURATION,
    default_chaos_plan,
    render_chaos_report,
    run_chaos,
)
from repro.faults import FaultPlan  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=DEFAULT_DURATION)
    parser.add_argument("--receivers", type=int, default=4)
    parser.add_argument("--plan", type=str, default=None,
                        help="JSON fault plan to replay (default: canonical storm)")
    parser.add_argument("--save-plan", type=str, default=None,
                        help="write the plan that was used to this JSON file")
    parser.add_argument("--recover-intervals", type=float, default=3.0)
    parser.add_argument("--json", action="store_true", help="emit the full result as JSON")
    args = parser.parse_args(argv)

    if args.plan:
        try:
            with open(args.plan) as fh:
                plan = FaultPlan.from_dicts(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load fault plan {args.plan!r}: {exc}")
    else:
        plan = default_chaos_plan()

    if args.save_plan:
        with open(args.save_plan, "w") as fh:
            json.dump(plan.to_dicts(), fh, indent=2)

    result = run_chaos(
        seed=args.seed,
        duration=args.duration,
        n_receivers=args.receivers,
        plan=plan,
        recover_intervals=args.recover_intervals,
    )
    if args.json:
        print(json.dumps(result, indent=2, default=str))
    else:
        print(render_chaos_report(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
