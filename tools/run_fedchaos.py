"""Chaos-test the federated control plane and gate its robustness claims.

The default run is exactly ``python -m repro fedchaos --seed 1`` without
run artifacts; this tool adds plan round-tripping and the replay-diff
projection used by CI:

    # the acceptance sweep: loss x partition-window grid, 3 domains
    python tools/run_fedchaos.py --seed 1

    # save the fault plan a single point would use, then replay it
    python tools/run_fedchaos.py --seed 1 --loss 0.2 --windows 3 \\
        --save-plan fedchaos-plan.json
    python tools/run_fedchaos.py --seed 1 --plan fedchaos-plan.json

    # machine-readable output for CI (timings stripped so two
    # same-seed runs diff clean)
    python tools/run_fedchaos.py --seed 1 --json --strip-timings > result.json

Exits non-zero when any gate fails: every shard must apply advice at the
post-failover epoch within ``--recovery-rounds`` of the failover, decayed
ceilings must never overshoot the same-seed fault-free baseline's advice,
and the sequential and executor-parallel shard modes must produce
identical results under the same fault plan (modulo wall timings).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults import FaultPlan  # noqa: E402
from repro.federation import (  # noqa: E402
    DEFAULT_CHAOS_DURATION,
    default_fedchaos_plan,
    render_fedchaos_report,
    run_fedchaos,
)


def strip_timings(result: dict) -> dict:
    """A deep copy of ``result`` without wall-clock timing fields — the
    replay-diff projection used by CI."""
    clean = json.loads(json.dumps(result, default=str))
    clean.get("baseline", {}).pop("wall_s", None)
    for point in clean.get("points", []):
        point.get("faulted", {}).pop("wall_s", None)
    return clean


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--duration", type=float, default=DEFAULT_CHAOS_DURATION)
    parser.add_argument("--cadence", type=float, default=4.0)
    parser.add_argument("--domains", type=int, default=3,
                        help="number of administrative domains (default 3)")
    parser.add_argument("--receivers", type=int, default=8,
                        help="receivers per domain (default 8)")
    parser.add_argument("--loss", type=str, default="0.05,0.2",
                        help="comma-separated channel loss rates")
    parser.add_argument("--windows", type=str, default="3,4",
                        help="comma-separated partition windows, in rounds")
    parser.add_argument("--partition-domain", type=str, default="d2",
                        help="domain cut off during the partition window")
    parser.add_argument("--staleness-budget", type=int, default=2,
                        help="advice age (rounds) tolerated before decay")
    parser.add_argument("--retries", type=int, default=3,
                        help="summary send attempts per round (default 3)")
    parser.add_argument("--recovery-rounds", type=int, default=3,
                        help="rounds allowed for post-failover recovery")
    parser.add_argument("--plan", type=str, default=None,
                        help="JSON fault plan to replay (single point)")
    parser.add_argument("--save-plan", type=str, default=None,
                        help="write the plan that was used to this JSON file "
                             "(needs a single --loss and --windows value)")
    parser.add_argument("--no-parallel-check", action="store_true",
                        help="skip the mode-equivalence rerun")
    parser.add_argument("--json", action="store_true",
                        help="emit the full result as JSON")
    parser.add_argument("--strip-timings", action="store_true",
                        help="with --json: drop wall-clock fields so two "
                             "same-seed runs diff clean")
    args = parser.parse_args(argv)

    losses = [float(x) for x in args.loss.split(",") if x]
    windows = [int(x) for x in args.windows.split(",") if x]

    if args.plan:
        try:
            with open(args.plan) as fh:
                plan = FaultPlan.from_dicts(json.load(fh))
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load fault plan {args.plan!r}: {exc}")
    elif args.save_plan:
        if len(losses) != 1 or len(windows) != 1:
            parser.error("--save-plan needs exactly one --loss and one "
                         "--windows value (a plan encodes a single point)")
        plan = default_fedchaos_plan(
            cadence=args.cadence, loss=losses[0],
            domain=args.partition_domain, partition_rounds=windows[0],
        )
    else:
        plan = None

    if args.save_plan and plan is not None:
        with open(args.save_plan, "w") as fh:
            json.dump(plan.to_dicts(), fh, indent=2)

    try:
        result = run_fedchaos(
            seed=args.seed,
            duration=args.duration,
            cadence=args.cadence,
            n_domains=args.domains,
            receivers_per_domain=args.receivers,
            loss_rates=losses,
            partition_rounds=windows,
            partition_domain=args.partition_domain,
            staleness_budget=args.staleness_budget,
            retry_limit=args.retries,
            recovery_rounds=args.recovery_rounds,
            plan=plan,
            check_parallel=not args.no_parallel_check,
        )
    except ValueError as exc:
        parser.error(str(exc))
    if args.json:
        out = strip_timings(result) if args.strip_timings else result
        print(json.dumps(out, indent=2, default=str))
    else:
        print(render_fedchaos_report(result))
    return 0 if result["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
