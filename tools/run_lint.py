#!/usr/bin/env python
"""Run the determinism & contract linter without installing the package.

Equivalent to ``PYTHONPATH=src python -m repro lint``; forwards all
arguments (``--json``, ``--root``) and exits with the linter's
CLI-conventional code (0 clean / 1 findings / 2 internal error).
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["lint", "--root", str(ROOT), *sys.argv[1:]]))
