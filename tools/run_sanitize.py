#!/usr/bin/env python
"""Run the shared-state sanitizer smoke without installing the package.

Equivalent to ``PYTHONPATH=src python -m repro sanitize``; forwards all
arguments (``--fuzz-seeds``, ``--domains``, ``--json``, ...) and exits
non-zero if any parallel run races or diverges from its sequential twin.
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(["sanitize", *sys.argv[1:]]))
